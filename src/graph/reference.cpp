// Frozen seed implementations — see reference.hpp for why these exist.
// This file is a verbatim copy of the original dijkstra.cpp / yen.cpp /
// steiner.cpp bodies; keep it byte-for-byte faithful to the seed logic.

#include "graph/reference.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <set>
#include <utility>

namespace dagsfc::graph::reference {

namespace {

ShortestPathTree run_dijkstra(const Graph& g, NodeId source,
                              const EdgeFilter& filter,
                              std::optional<NodeId> stop_at) {
  DAGSFC_CHECK(g.has_node(source));
  ShortestPathTree t;
  t.source = source;
  t.dist.assign(g.num_nodes(), kInfCost);
  t.parent.assign(g.num_nodes(), kInvalidNode);
  t.parent_edge.assign(g.num_nodes(), kInvalidEdge);

  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  t.dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > t.dist[v]) continue;  // stale entry
    if (stop_at && v == *stop_at) break;
    for (const Incidence& inc : g.neighbors(v)) {
      if (filter && !filter(inc.edge)) continue;
      const double nd = d + g.edge(inc.edge).weight;
      if (nd < t.dist[inc.neighbor]) {
        t.dist[inc.neighbor] = nd;
        t.parent[inc.neighbor] = v;
        t.parent_edge[inc.neighbor] = inc.edge;
        pq.emplace(nd, inc.neighbor);
      }
    }
  }
  return t;
}

}  // namespace

ShortestPathTree dijkstra(const Graph& g, NodeId source,
                          const EdgeFilter& filter) {
  return run_dijkstra(g, source, filter, std::nullopt);
}

std::optional<Path> min_cost_path(const Graph& g, NodeId source, NodeId target,
                                  const EdgeFilter& filter) {
  DAGSFC_CHECK(g.has_node(target));
  return run_dijkstra(g, source, filter, target).path_to(target);
}

namespace {

/// Lexicographic tie-break so results are deterministic across platforms.
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.nodes < b.nodes;
  }
};

}  // namespace

std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                   NodeId target, std::size_t k,
                                   const EdgeFilter& filter) {
  std::vector<Path> result;
  if (k == 0) return result;

  auto first = reference::min_cost_path(g, source, target, filter);
  if (!first) return result;
  result.push_back(std::move(*first));

  std::set<Path, PathLess> candidates;
  std::set<std::vector<NodeId>> known;  // dedupe by node sequence
  known.insert(result.front().nodes);

  while (result.size() < k) {
    const Path& prev = result.back();
    // Each node of the previous path (except the last) spawns a spur.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur_node = prev.nodes[i];

      // Edges removed for this spur: (a) the i-th edge of every accepted
      // path sharing the root prefix, (b) edges internal to the root path so
      // the spur cannot revisit it.
      std::set<EdgeId> banned_edges;
      for (const Path& p : result) {
        if (p.nodes.size() > i + 1 &&
            std::equal(p.nodes.begin(), p.nodes.begin() + i + 1,
                       prev.nodes.begin())) {
          banned_edges.insert(p.edges[i]);
        }
      }
      std::set<NodeId> banned_nodes(prev.nodes.begin(), prev.nodes.begin() + i);

      EdgeFilter spur_filter = [&](EdgeId e) {
        if (filter && !filter(e)) return false;
        if (banned_edges.count(e)) return false;
        const Edge& ed = g.edge(e);
        if (banned_nodes.count(ed.u) || banned_nodes.count(ed.v)) return false;
        return true;
      };

      auto spur = reference::min_cost_path(g, spur_node, target, spur_filter);
      if (!spur) continue;

      Path total;
      total.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + i);
      total.edges.assign(prev.edges.begin(), prev.edges.begin() + i);
      total.nodes.insert(total.nodes.end(), spur->nodes.begin(),
                         spur->nodes.end());
      total.edges.insert(total.edges.end(), spur->edges.begin(),
                         spur->edges.end());
      total.cost = g.path_cost(total);
      if (known.insert(total.nodes).second) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

namespace {

struct Choice {
  enum class Kind : std::uint8_t { None, Init, Merge, Extend };
  Kind kind = Kind::None;
  std::uint32_t split = 0;   // Merge: one proper subset S' (other is S\S')
  NodeId from = kInvalidNode;  // Extend: predecessor node u; Init: terminal
};

}  // namespace

std::optional<SteinerTree> steiner_tree(const Graph& g,
                                        const std::vector<NodeId>& terminals,
                                        const EdgeFilter& filter) {
  std::vector<NodeId> terms(terminals);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (NodeId t : terms) DAGSFC_CHECK(g.has_node(t));
  if (terms.empty()) return SteinerTree{};
  if (terms.size() == 1) return SteinerTree{};
  DAGSFC_CHECK_MSG(terms.size() <= 14, "too many Steiner terminals for DP");

  const std::size_t n = g.num_nodes();
  const std::size_t k = terms.size();
  const std::uint32_t full = (1u << k) - 1;

  // dp[S][v]: min weight of a tree containing node v and terminal subset S.
  std::vector<std::vector<double>> dp(full + 1,
                                      std::vector<double>(n, kInfCost));
  std::vector<std::vector<Choice>> how(full + 1, std::vector<Choice>(n));

  // Single-terminal base: dp[{i}][v] = shortest-path dist(t_i, v).
  std::vector<ShortestPathTree> term_sp;
  term_sp.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    term_sp.push_back(reference::dijkstra(g, terms[i], filter));
    const std::uint32_t bit = 1u << i;
    for (NodeId v = 0; v < n; ++v) {
      dp[bit][v] = term_sp[i].dist[v];
      how[bit][v] = Choice{Choice::Kind::Init, 0, terms[i]};
    }
  }

  using Item = std::pair<double, NodeId>;
  for (std::uint32_t S = 1; S <= full; ++S) {
    if ((S & (S - 1)) == 0) continue;  // singletons done above
    auto& row = dp[S];
    auto& hrow = how[S];
    // Merge two complementary sub-trees at v.
    for (std::uint32_t sub = (S - 1) & S; sub > 0; sub = (sub - 1) & S) {
      const std::uint32_t rest = S ^ sub;
      if (sub > rest) continue;  // each unordered split once
      const auto& a = dp[sub];
      const auto& b = dp[rest];
      for (NodeId v = 0; v < n; ++v) {
        if (a[v] == kInfCost || b[v] == kInfCost) continue;
        const double c = a[v] + b[v];
        if (c < row[v]) {
          row[v] = c;
          hrow[v] = Choice{Choice::Kind::Merge, sub, kInvalidNode};
        }
      }
    }
    // Dijkstra-style relaxation: grow the tree along cheap paths.
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    for (NodeId v = 0; v < n; ++v) {
      if (row[v] < kInfCost) pq.emplace(row[v], v);
    }
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > row[v]) continue;
      for (const Incidence& inc : g.neighbors(v)) {
        if (filter && !filter(inc.edge)) continue;
        const double nd = d + g.edge(inc.edge).weight;
        if (nd < row[inc.neighbor]) {
          row[inc.neighbor] = nd;
          hrow[inc.neighbor] = Choice{Choice::Kind::Extend, 0, v};
          pq.emplace(nd, inc.neighbor);
        }
      }
    }
  }

  const NodeId root = terms[0];
  if (dp[full][root] == kInfCost) return std::nullopt;

  // Reconstruct the edge set by unwinding the DP choices.
  std::set<EdgeId> edges;
  std::vector<std::pair<std::uint32_t, NodeId>> stack{{full, root}};
  auto add_tree_path = [&](const ShortestPathTree& sp, NodeId v) {
    while (v != sp.source) {
      edges.insert(sp.parent_edge[v]);
      v = sp.parent[v];
    }
  };
  while (!stack.empty()) {
    auto [S, v] = stack.back();
    stack.pop_back();
    const Choice& c = how[S][v];
    switch (c.kind) {
      case Choice::Kind::Init: {
        // Path from terminal c.from to v along that terminal's SP tree.
        std::size_t ti = 0;
        while (terms[ti] != c.from) ++ti;
        add_tree_path(term_sp[ti], v);
        break;
      }
      case Choice::Kind::Merge:
        stack.emplace_back(c.split, v);
        stack.emplace_back(S ^ c.split, v);
        break;
      case Choice::Kind::Extend: {
        const auto e = g.find_edge(c.from, v);
        DAGSFC_ASSERT(e.has_value());
        edges.insert(*e);
        stack.emplace_back(S, c.from);
        break;
      }
      case Choice::Kind::None:
        DAGSFC_CHECK_MSG(false, "Steiner reconstruction hit an unset cell");
    }
  }

  SteinerTree out;
  out.edges.assign(edges.begin(), edges.end());
  for (EdgeId e : out.edges) out.cost += g.edge(e).weight;
  // Deduplication can only make the reconstruction cheaper; the DP value is
  // optimal, so equality must hold (up to float noise).
  DAGSFC_ASSERT(out.cost <= dp[full][root] + 1e-9);
  return out;
}

}  // namespace dagsfc::graph::reference
