#pragma once
/// \file alt_query.hpp
/// Per-query view of the ALT landmark bounds (see oracle.hpp), consumed by
/// the goal-directed search kernels in dijkstra.cpp and yen.cpp.
///
/// An AltQuery is a stack-local POD built by DistanceOracle::query() for one
/// (source, target) pair: up to kMaxActive landmark distance tables (chosen
/// by tightest bound on that pair), the target's distance under each, and an
/// optional upper-bound seed. It borrows the oracle's tables — valid only
/// while the oracle outlives the query and is not refreshed or rebuilt.
///
/// The bound it provides is the classic ALT lower bound
///
///   lb(v) = max_l |d(l, target) − d(l, v)| ≤ d(v, target)
///
/// (triangle inequality on the full graph; one table per landmark suffices
/// because the graph is undirected). Full-graph distances only shrink when
/// edges are *removed*, so lb stays admissible under any EdgeMask — which is
/// what lets Yen's masked spur searches reuse the same tables. The upper
/// bound seed (min_l d(s,l)+d(l,t)) is the cost of a real landmark-routed
/// path and is therefore only valid when the query runs unmasked; masked
/// callers leave seed_ub at +inf and the kernel tightens it dynamically from
/// target relaxations.
///
/// The kernels use lb to *prune only* — never to reorder the heap — which is
/// what keeps oracle-on results bitwise identical to oracle-off (the full
/// argument lives in dijkstra.cpp above run_flat_alt and in DESIGN.md §13).

#include <array>
#include <cstdint>

#include "graph/graph.hpp"

namespace dagsfc::graph {

/// Tallies of the pruning tests a goal-directed search performed; wired into
/// PathQueryCounters by core::PathOracle and exposed as
/// dagsfc_oracle_pruned_ratio.
struct PruneStats {
  std::uint64_t tested = 0;  ///< prune tests evaluated (pops + relaxations)
  std::uint64_t pruned = 0;  ///< tests that fired (work actually skipped)
};

struct AltQuery {
  static constexpr std::uint32_t kMaxActive = 4;

  /// Borrowed node-major landmark bank: bank[v·stride + l] = d(landmark l,
  /// v). Node-major is load-bearing for the kernels — one lower_bound call
  /// reads `active` entries of a single contiguous row (usually one cache
  /// line), where per-landmark tables would touch `active` scattered lines.
  const double* bank = nullptr;
  std::uint32_t stride = 0;
  /// Column indices of the active landmarks within a node row. Slots past
  /// `active` repeat slot 0 (max-neutral padding) so lower_bound can run a
  /// fixed kMaxActive-wide computation.
  std::array<std::uint32_t, kMaxActive> lm{};
  /// bank[target·stride + lm[i]], hoisted out of the inner loop.
  std::array<double, kMaxActive> to_target{};
  std::uint32_t active = 0;
  NodeId target = kInvalidNode;
  /// Valid cost upper bound for the query, or kInfCost when none is known
  /// up front (masked searches). The kernel still tightens dynamically.
  ///
  /// With `threshold` set the seed is reinterpreted as a *prune threshold*
  /// rather than a guaranteed upper bound: the kernel's result is bitwise
  /// the unpruned one whenever the true distance is ≤ seed_ub, but when it
  /// exceeds the seed the search may return a costlier real path or nothing
  /// at all. Callers opting in must discard any result whose cost lands
  /// above the threshold (Yen's Lawler bound does exactly that — a spur
  /// path costlier than the k-th needed candidate can never be selected,
  /// so losing it is unobservable).
  double seed_ub = kInfCost;
  /// Opt-in for threshold semantics of seed_ub (see above). Allows a finite
  /// seed under an EdgeMask, which is otherwise rejected because the
  /// landmark-routed upper bound may use masked edges.
  bool threshold = false;
  /// Optional tally sink; null means don't count.
  PruneStats* stats = nullptr;

  /// max_l |d(l, target) − d(l, v)| over the active landmarks. All bank
  /// entries are finite (the oracle disables itself on disconnected
  /// graphs), so no inf−inf NaN can arise.
  ///
  /// Fixed kMaxActive-wide on purpose: a variable-trip loop folding through
  /// one accumulator serializes the bank loads behind each other (each
  /// max depends on the previous load), which made the tighter 4-landmark
  /// bound *slower* than the 2-landmark one. With padded slots the four
  /// loads are independent and the max reduces as a tree. Widening past 4
  /// was tried and rejected: 8 active columns touch both cache lines of
  /// every visited node row, and the extra bank traffic cost more than the
  /// tighter bound saved once sources rotate (cold rows).
  [[nodiscard]] double lower_bound(NodeId v) const {
    if (bank == nullptr) return 0.0;
    const double* const row = bank + static_cast<std::size_t>(v) * stride;
    double a0 = row[lm[0]] - to_target[0];
    double a1 = row[lm[1]] - to_target[1];
    double a2 = row[lm[2]] - to_target[2];
    double a3 = row[lm[3]] - to_target[3];
    a0 = a0 < 0.0 ? -a0 : a0;
    a1 = a1 < 0.0 ? -a1 : a1;
    a2 = a2 < 0.0 ? -a2 : a2;
    a3 = a3 < 0.0 ? -a3 : a3;
    const double b0 = a0 > a1 ? a0 : a1;
    const double b1 = a2 > a3 ? a2 : a3;
    return b0 > b1 ? b0 : b1;
  }
};

/// The float-safety guard pruning compares against: a candidate is dropped
/// only when d + lb(v) exceeds ub by more than a 1e-9 relative slack. The
/// slack absorbs the last-ulp rounding differences between the bound
/// arithmetic (table lookups, landmark-path sums) and the search's own
/// chained additions — accumulated double error is ~1e-13 relative, orders
/// of magnitude under the slack — so a relaxation the unpruned run needs can
/// never be dropped, which is load-bearing for bit-identity.
[[nodiscard]] inline double prune_guard(double ub) noexcept {
  return ub + ub * 1e-9;
}

}  // namespace dagsfc::graph
