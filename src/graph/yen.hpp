#pragma once
/// \file yen.hpp
/// Yen's algorithm for the k cheapest loopless paths. The paper's model
/// enumerates real-paths p^a_{b,ρ} within a real-path set P^a_b; BBE's
/// candidate generation uses alternative real-paths between fixed endpoints,
/// which this provides deterministically (ties broken by node sequence).

#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace dagsfc::graph {

/// Flat tier: up to \p k cheapest simple paths source→target in ascending
/// cost order, searching through \p ws (whose base/spur mask buffers the
/// spur loop reuses — one word-copy per spur instead of a closure over fresh
/// std::sets). A null \p mask admits every edge. Results are bit-identical
/// to the legacy overload below.
[[nodiscard]] std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                                 NodeId target, std::size_t k,
                                                 const EdgeMask* mask,
                                                 SearchWorkspace& ws);

/// Goal-directed tier: same results, with every inner search (the first
/// path and all spur searches) pruned through \p alt (which must target
/// \p target; see alt_query.hpp). The spur searches run under masks, so
/// they use a copy of \p alt with the upper-bound seed stripped — the
/// landmark lower bounds stay admissible under any mask, the seed does not.
[[nodiscard]] std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                                 NodeId target, std::size_t k,
                                                 const EdgeMask* mask,
                                                 SearchWorkspace& ws,
                                                 const AltQuery& alt);

/// Legacy tier: up to \p k cheapest simple paths source→target in ascending
/// cost order. Honors \p filter the same way dijkstra() does. Returns fewer
/// than k paths when the graph does not contain them.
[[nodiscard]] std::vector<Path> k_shortest_paths(const Graph& g, NodeId source,
                                                 NodeId target, std::size_t k,
                                                 const EdgeFilter& filter = {});

}  // namespace dagsfc::graph
