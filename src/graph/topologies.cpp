#include "graph/topologies.hpp"

#include <cmath>
#include <vector>

namespace dagsfc::graph {

Graph make_ring(std::size_t n) {
  DAGSFC_CHECK_MSG(n >= 3, "a ring needs at least 3 nodes");
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    (void)g.add_edge(static_cast<NodeId>(i),
                     static_cast<NodeId>((i + 1) % n), 1.0);
  }
  return g;
}

Graph make_star(std::size_t n) {
  DAGSFC_CHECK_MSG(n >= 2, "a star needs at least 2 nodes");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    (void)g.add_edge(0, static_cast<NodeId>(i), 1.0);
  }
  return g;
}

Graph make_line(std::size_t n) {
  DAGSFC_CHECK(n >= 1);
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    (void)g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 1.0);
  }
  return g;
}

Graph make_grid(std::size_t rows, std::size_t cols, bool wrap) {
  DAGSFC_CHECK(rows >= 1 && cols >= 1);
  if (wrap) {
    DAGSFC_CHECK_MSG((rows == 1 || rows >= 3) && (cols == 1 || cols >= 3),
                     "torus wrap needs >= 3 nodes along wrapped dimensions");
  }
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) (void)g.add_edge(id(r, c), id(r, c + 1), 1.0);
      if (r + 1 < rows) (void)g.add_edge(id(r, c), id(r + 1, c), 1.0);
    }
  }
  if (wrap) {
    if (cols >= 3) {
      for (std::size_t r = 0; r < rows; ++r) {
        (void)g.add_edge(id(r, cols - 1), id(r, 0), 1.0);
      }
    }
    if (rows >= 3) {
      for (std::size_t c = 0; c < cols; ++c) {
        (void)g.add_edge(id(rows - 1, c), id(0, c), 1.0);
      }
    }
  }
  return g;
}

Graph make_leaf_spine(std::size_t n, std::size_t spines) {
  DAGSFC_CHECK_MSG(spines >= 1 && spines < n,
                   "need at least one spine and one leaf");
  Graph g(n);
  for (std::size_t leaf = spines; leaf < n; ++leaf) {
    for (std::size_t s = 0; s < spines; ++s) {
      (void)g.add_edge(static_cast<NodeId>(leaf), static_cast<NodeId>(s),
                       1.0);
    }
  }
  return g;
}

Graph make_fat_tree(std::size_t k) {
  DAGSFC_CHECK_MSG(k >= 2 && k % 2 == 0, "fat-tree arity must be even");
  const std::size_t half = k / 2;
  const std::size_t cores = half * half;
  Graph g(cores + k * k);  // cores + k pods × (half agg + half edge)
  auto agg = [&](std::size_t pod, std::size_t i) {
    return static_cast<NodeId>(cores + pod * k + i);
  };
  auto edge = [&](std::size_t pod, std::size_t i) {
    return static_cast<NodeId>(cores + pod * k + half + i);
  };
  for (std::size_t pod = 0; pod < k; ++pod) {
    // Full bipartite agg↔edge inside the pod.
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t e = 0; e < half; ++e) {
        (void)g.add_edge(agg(pod, a), edge(pod, e), 1.0);
      }
    }
    // Aggregation a connects to cores [a·half, (a+1)·half).
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t c = 0; c < half; ++c) {
        (void)g.add_edge(agg(pod, a), static_cast<NodeId>(a * half + c),
                         1.0);
      }
    }
  }
  return g;
}

Graph make_waxman(Rng& rng, const WaxmanOptions& opts) {
  DAGSFC_CHECK(opts.num_nodes >= 1);
  DAGSFC_CHECK(opts.alpha > 0.0 && opts.alpha <= 1.0);
  DAGSFC_CHECK(opts.beta > 0.0);
  const std::size_t n = opts.num_nodes;
  Graph g(n);
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) {
    p = {rng.uniform_real(0.0, 1.0), rng.uniform_real(0.0, 1.0)};
  }
  const double max_dist = std::sqrt(2.0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = pos[u].first - pos[v].first;
      const double dy = pos[u].second - pos[v].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      const double p = opts.alpha * std::exp(-d / (opts.beta * max_dist));
      if (rng.bernoulli(p)) (void)g.add_edge(u, v, 1.0);
    }
  }
  // Guarantee connectivity with a random spanning tree over the remainder.
  std::vector<NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<NodeId>(i);
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId parent = order[rng.index(i)];
    if (!g.find_edge(order[i], parent).has_value()) {
      (void)g.add_edge(order[i], parent, 1.0);
    }
  }
  // The tree alone does not connect components formed among earlier nodes…
  // it does: every node (in shuffled order) gains a link to some earlier
  // node, so by induction all nodes connect to order[0].
  DAGSFC_ASSERT(is_connected(g));
  return g;
}

}  // namespace dagsfc::graph
