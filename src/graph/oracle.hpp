#pragma once
/// \file oracle.hpp
/// Epoch-keyed ALT (A*-landmarks-triangle-inequality) distance oracle.
///
/// The substrate's *structure* is nearly static — repricing only rewrites
/// weights through the CSR mirror — which is the textbook setting for
/// preprocessing. A DistanceOracle picks a small set of landmarks by
/// farthest-point selection and stores one exact SSSP distance table per
/// landmark (the graph is undirected, so one table serves both directions).
/// Queries derive admissible lower bounds lb(v,t) = max_l |d(l,t) − d(l,v)|
/// that the goal-directed kernels (dijkstra.cpp, yen.cpp) use to prune —
/// never to reorder — so oracle-on results stay bitwise identical to
/// oracle-off (DESIGN.md §13).
///
/// ## Epoch keying
///
/// The oracle snapshots the graph's two revision stamps:
///   * Graph::weight_revision() moved (repricing) → refresh(): re-run the
///     landmark SSSPs over the current weights. Landmark *positions* are
///     kept — farthest-point quality degrades gracefully under repricing,
///     and admissibility only needs the tables to be true distance fields.
///   * Graph::structure_revision() moved (add_node/add_edge) → rebuild():
///     re-select landmarks from scratch and refill the tables.
/// ensure_current() applies whichever is due. It mutates the tables and is
/// therefore quiescent-only: owners call it between solves (bench loops,
/// serve start-up, repricing points), never concurrently with queries. A
/// stale oracle is *safe* — consumers check matches() per query and simply
/// fall back to the unpruned kernels — so forgetting a refresh costs speed,
/// not correctness.
///
/// On a graph where some node pair is unreachable the oracle disables
/// itself (active() == false): an infinite table entry would make the bound
/// arithmetic NaN-prone, and such graphs are not the serving workload.
///
/// Thread safety: after construction / ensure_current() the oracle is
/// immutable and may be shared by any number of concurrent query() callers
/// (the serve worker pool attaches one per-process oracle to every worker
/// workspace). builds/refreshes are also published to a MetricRegistry as
/// dagsfc_oracle_builds_total / dagsfc_oracle_refreshes_total.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/alt_query.hpp"
#include "graph/graph.hpp"
#include "graph/workspace.hpp"

namespace dagsfc::util {
class MetricRegistry;
}  // namespace dagsfc::util

namespace dagsfc::graph {

class DistanceOracle {
 public:
  struct Options {
    /// Landmark budget; clamped to the node count. The bank costs |L|·|V|
    /// doubles, and the budget's main job is the *upper* bound: the seed ub
    /// is the best landmark-routed detour, and its tightness — not the
    /// lower bound's — is what decides how much the goal-directed kernels
    /// prune. 16 is the sweet spot on the paper-scale topologies (8 leaves
    /// the ub ~1.9× the true distance and pruning barely pays for itself).
    std::size_t landmarks = 16;
    /// Landmarks consulted per query (the tightest for that pair), capped
    /// at AltQuery::kMaxActive.
    std::uint32_t active_per_query = AltQuery::kMaxActive;
    /// Where builds/refreshes are counted; null means the process-global
    /// registry. Injectable for tests.
    util::MetricRegistry* registry = nullptr;
  };

  /// Builds the first set of tables (counts as build #1). \p g must
  /// outlive the oracle.
  explicit DistanceOracle(const Graph& g) : DistanceOracle(g, Options{}) {}
  DistanceOracle(const Graph& g, Options opts);

  DistanceOracle(const DistanceOracle&) = delete;
  DistanceOracle& operator=(const DistanceOracle&) = delete;

  /// Tables exist and are finite — pruning is available. False on
  /// disconnected or empty graphs.
  [[nodiscard]] bool active() const noexcept { return complete_; }

  /// The snapshotted revisions still match the graph's.
  [[nodiscard]] bool fresh() const noexcept {
    return g_->structure_revision() == structure_rev_ &&
           g_->weight_revision() == weight_rev_;
  }

  /// True iff this oracle may prune queries on \p g right now: same graph
  /// object, tables usable, revisions current. The per-query gate every
  /// consumer checks before building an AltQuery.
  [[nodiscard]] bool matches(const Graph& g) const noexcept {
    return &g == g_ && complete_ && fresh();
  }

  /// Re-sync with the graph: structural drift → full rebuild (landmark
  /// re-selection), weight drift → cheap refresh (landmark SSSPs only, no
  /// CSR rebuild). No-op when fresh. Quiescent-only (see file comment).
  void ensure_current();

  [[nodiscard]] std::size_t num_landmarks() const noexcept {
    return landmarks_.size();
  }
  [[nodiscard]] std::span<const NodeId> landmarks() const noexcept {
    return landmarks_;
  }
  [[nodiscard]] std::uint64_t builds() const noexcept { return builds_; }
  [[nodiscard]] std::uint64_t refreshes() const noexcept {
    return refreshes_;
  }

  /// Admissible lower bound on d(a, b) over *all* landmarks (0 when
  /// inactive). Test/diagnostic entry — kernels go through query().
  [[nodiscard]] double lower_bound(NodeId a, NodeId b) const;

  /// Upper bound min_l d(a,l) + d(l,b) — the cost of a real landmark-routed
  /// path, so only valid for unmasked searches (kInfCost when inactive).
  [[nodiscard]] double upper_bound(NodeId a, NodeId b) const;

  /// Bound context for one source→target search: the active_per_query
  /// landmarks ranked tightest-first for this pair (deterministic:
  /// descending bound, ascending landmark index on ties). Pass
  /// \p seed_upper_bound = true only for unmasked queries. The result
  /// borrows the oracle's tables; callers on the query path must have
  /// checked matches() first.
  [[nodiscard]] AltQuery query(NodeId source, NodeId target,
                               bool seed_upper_bound) const;

 private:
  void rebuild();
  void refresh();
  /// Node v's row of the bank: one double per reserved landmark column.
  [[nodiscard]] const double* node_row(NodeId v) const {
    return tables_.data() + static_cast<std::size_t>(v) * cols_;
  }
  bool fill_column(std::size_t column);

  const Graph* g_;
  Options opts_;
  util::MetricRegistry* registry_;

  std::vector<NodeId> landmarks_;
  /// Node-major bank (see AltQuery::bank): tables_[v·cols_ + l] is the
  /// distance from landmark l to node v. Node-major keeps one query's
  /// per-candidate reads on a single cache line.
  std::vector<double> tables_;
  std::size_t cols_ = 0;       // reserved landmark columns per node row
  std::size_t num_nodes_ = 0;  // node rows in the bank
  bool complete_ = false;

  std::uint64_t structure_rev_ = 0;
  std::uint64_t weight_rev_ = 0;
  std::uint64_t builds_ = 0;
  std::uint64_t refreshes_ = 0;

  SearchWorkspace build_ws_;  // private to the (quiescent) build path
};

}  // namespace dagsfc::graph
