#pragma once
/// \file edge_mask.hpp
/// Flat bitset over edge ids — the fast-path replacement for the
/// std::function EdgeFilter in the search kernels.
///
/// An EdgeFilter costs a type-erased indirect call per edge probe and often
/// captures heap state (sets of banned edges, ledger pointers). An EdgeMask
/// answers the same question — "may this search traverse edge e?" — with one
/// inlined word load and bit test, and a mask buffer is reusable across
/// searches: Yen's spur loops rebuild one buffer per spur (word-copy of the
/// base mask, then clear the banned bits) instead of constructing a fresh
/// closure around fresh std::sets per candidate.
///
/// Semantics are deliberately identical to the filters they replace: a mask
/// materialized from a pure EdgeFilter allows exactly the edges the filter
/// accepts, so any search is bit-identical under either representation.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace dagsfc::graph {

/// Non-owning view over a mask buffer; bit e set ⇔ edge e is traversable.
/// Cheap to copy (pointer + size). No bounds checks in allows() — the
/// kernels only probe ids below the buffer's edge count.
class EdgeMask {
 public:
  EdgeMask() = default;
  EdgeMask(const std::uint64_t* words, std::size_t num_edges)
      : words_(words), num_edges_(num_edges) {}

  [[nodiscard]] bool allows(EdgeId e) const {
    return (words_[e >> 6] >> (e & 63)) & 1u;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] const std::uint64_t* words() const noexcept { return words_; }

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t num_edges_ = 0;
};

/// Owning, reusable mask storage. assign()/fill_from() only allocate when
/// the edge count grows beyond the current capacity, so warm reuse across
/// searches is allocation-free.
class EdgeMaskBuffer {
 public:
  /// Sizes the buffer for \p num_edges bits, all set to \p value.
  void assign(std::size_t num_edges, bool value) {
    num_edges_ = num_edges;
    words_.assign(word_count(num_edges), value ? ~std::uint64_t{0} : 0);
    trim_tail();
  }

  /// Materializes \p filter: bit e = filter(e). A null filter allows all.
  /// One filter evaluation per edge — callers amortize this over the many
  /// probes a search (or a whole Yen run) would otherwise pay.
  void fill_from(const Graph& g, const EdgeFilter& filter) {
    assign(g.num_edges(), true);
    if (!filter) return;
    for (EdgeId e = 0; e < num_edges_; ++e) {
      if (!filter(e)) clear(e);
    }
  }

  void copy_from(const EdgeMaskBuffer& other) {
    num_edges_ = other.num_edges_;
    words_.assign(other.words_.begin(), other.words_.end());
  }

  /// Word-copy of a view (e.g. Yen re-seeding a spur mask from its base).
  void copy_from(const EdgeMask& other) {
    num_edges_ = other.num_edges();
    words_.assign(other.words(), other.words() + word_count(num_edges_));
  }

  void set(EdgeId e) {
    DAGSFC_ASSERT(e < num_edges_);
    words_[e >> 6] |= std::uint64_t{1} << (e & 63);
  }
  void clear(EdgeId e) {
    DAGSFC_ASSERT(e < num_edges_);
    words_[e >> 6] &= ~(std::uint64_t{1} << (e & 63));
  }
  [[nodiscard]] bool allows(EdgeId e) const {
    DAGSFC_ASSERT(e < num_edges_);
    return (words_[e >> 6] >> (e & 63)) & 1u;
  }

  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }
  [[nodiscard]] EdgeMask view() const {
    return EdgeMask{words_.data(), num_edges_};
  }

 private:
  static std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }

  /// Keeps bits past num_edges_ zero so whole-word operations stay exact.
  void trim_tail() {
    const std::size_t tail = num_edges_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::vector<std::uint64_t> words_;
  std::size_t num_edges_ = 0;
};

}  // namespace dagsfc::graph
