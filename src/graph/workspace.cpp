#include "graph/workspace.hpp"

#include <atomic>

namespace dagsfc::graph {

namespace {
std::atomic<bool> g_flat_search_default{true};
}  // namespace

void set_flat_search_default(bool enabled) noexcept {
  g_flat_search_default.store(enabled, std::memory_order_relaxed);
}

bool flat_search_default() noexcept {
  return g_flat_search_default.load(std::memory_order_relaxed);
}

SearchWorkspace& thread_local_workspace() {
  static thread_local SearchWorkspace ws;
  return ws;
}

void SearchWorkspace::prepare(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (slots_.size() < n) {
    // Growth value-initializes new slots (stamp 0), and the bump below
    // invalidates every pre-existing one.
    slots_.resize(n);
    parents_.resize(n);
  }
  ++generation_;
  if (generation_ == 0) {
    // uint32 wrap: stale slots could alias the new generation, so pay the
    // one O(V) clear per 2^32 searches.
    for (Slot& s : slots_) s.stamp = 0;
    generation_ = 1;
  }
  // Worst case pushes: one per successful relaxation, ≤ one per directed
  // arc (2|E|), plus the source. Reserving here is what makes warm calls
  // allocation-free.
  if (heap_.capacity() < 2 * g.num_edges() + 2) {
    heap_.reserve(2 * g.num_edges() + 2);
  }
  heap_.clear();
  source_ = kInvalidNode;
}

void SearchWorkspace::prepare_states(std::size_t num_states,
                                     std::size_t heap_reserve) {
  if (slots_.size() < num_states) {
    slots_.resize(num_states);
    parents_.resize(num_states);
  }
  ++generation_;
  if (generation_ == 0) {
    for (Slot& s : slots_) s.stamp = 0;
    generation_ = 1;
  }
  if (heap_.capacity() < heap_reserve) heap_.reserve(heap_reserve);
  heap_.clear();
  source_ = kInvalidNode;
}

void SearchWorkspace::bfs_prepare(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (bfs_stamp_.size() < n) {
    bfs_parent_.resize(n);
    bfs_stamp_.resize(n, 0);
  }
  ++bfs_generation_;
  if (bfs_generation_ == 0) {
    std::fill(bfs_stamp_.begin(), bfs_stamp_.end(), 0u);
    bfs_generation_ = 1;
  }
  bfs_visited_.clear();
  bfs_ring_.clear();
  bfs_scratch_.clear();
}

}  // namespace dagsfc::graph
