#pragma once
/// \file dot.hpp
/// Graphviz DOT export for debugging and the examples' visual output.

#include <functional>
#include <string>

#include "graph/graph.hpp"

namespace dagsfc::graph {

/// Optional per-node label; default is the node id.
using NodeLabeler = std::function<std::string(NodeId)>;

/// Renders the graph as an undirected DOT document. Edge labels carry the
/// weight (link price) with two decimals.
[[nodiscard]] std::string to_dot(const Graph& g, const std::string& name,
                                 const NodeLabeler& labeler = {});

}  // namespace dagsfc::graph
