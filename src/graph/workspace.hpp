#pragma once
/// \file workspace.hpp
/// Reusable, generation-stamped working state for the search kernels.
///
/// The seed implementations re-allocated their entire working set per call:
/// three O(V) `assign`s plus a priority_queue per Dijkstra, fresh
/// seen/parent vectors per ring search, fresh closures and std::sets per
/// Yen spur. PR 1's counters show thousands of such calls per sweep, so the
/// allocator and the O(V) clears dominate small-instance solves.
///
/// A SearchWorkspace owns all of that state once and makes "clearing" O(1)
/// with generation stamps: every per-node slot carries the generation that
/// last wrote it, and a slot is live only when its stamp equals the current
/// generation. prepare() bumps the generation instead of touching V
/// entries; on the (once per 2^32 searches) wrap-around the stamp array is
/// zeroed for real. Dijkstra and BFS keep separate stamp sets so a ring
/// search and the path queries it interleaves with never clobber each
/// other; the Yen mask buffers are likewise dedicated so spur searches can
/// run over them while a base mask stays pinned.
///
/// Ownership: one workspace per solver instance or per worker thread —
/// PathOracle embeds a fallback one, the serve layer keeps one per worker,
/// the trial runner one per pool thread. Workspaces are not thread-safe and
/// never shared concurrently. Reusing a workspace never changes results:
/// every kernel fully re-initializes the slots it reads (that is the whole
/// point of the stamps), which is what keeps flat search bit-identical to
/// the seed implementation.
///
/// A warm call on a prepared workspace performs zero heap allocations
/// (asserted by tests/test_search_workspace.cpp via a counting operator
/// new): arrays only grow when the graph grows, and the heap buffer is
/// reserved for the worst-case 2|E|+1 pushes up front.

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/edge_mask.hpp"
#include "graph/graph.hpp"

namespace dagsfc::graph {

class DistanceOracle;

/// Process-wide switch between the flat search kernels (CSR + workspace +
/// edge mask; the default) and the preserved seed implementations in
/// graph::reference. Exists for the differential tests and before/after
/// benches — results are bit-identical either way. Like
/// CapacityLedger::set_cache_default: flip before spawning worker threads.
void set_flat_search_default(bool enabled) noexcept;
[[nodiscard]] bool flat_search_default() noexcept;

class SearchWorkspace;

/// Per-thread fallback workspace backing the legacy EdgeFilter entry points
/// (callers that don't carry their own — ILP bound generation, one-off
/// tests). Hot-path callers should own a workspace instead so reuse is
/// explicit and measurable.
[[nodiscard]] SearchWorkspace& thread_local_workspace();

class SearchWorkspace {
 public:
  /// Min-heap entry ordered by (key, node) — the same lexicographic order a
  /// std::priority_queue over pair<double, NodeId> pops in, which is what
  /// keeps tie-breaks (and therefore parents and paths) bit-identical to
  /// the seed binary heap.
  struct HeapItem {
    double key;
    NodeId node;
  };

  SearchWorkspace() = default;
  SearchWorkspace(const SearchWorkspace&) = delete;
  SearchWorkspace& operator=(const SearchWorkspace&) = delete;
  SearchWorkspace(SearchWorkspace&&) = default;
  SearchWorkspace& operator=(SearchWorkspace&&) = default;

  // --- Dijkstra state ---------------------------------------------------

  /// Starts a new shortest-path search over \p g: bumps the generation (no
  /// per-node work), grows arrays only if the graph grew, clears the heap.
  void prepare(const Graph& g);

  /// Starts a new search over an abstract state space of \p num_states
  /// dense ids instead of the graph's nodes — e.g. the implicit layered
  /// product graph, where state = level·|V| + node. The slot/parent/heap
  /// machinery is shared with prepare(): the same stamps, the same strict
  /// (key, id) pop order, the same O(1) warm reuse. \p heap_reserve bounds
  /// the expected pushes (pass the per-level arc count times the level
  /// count); the heap still grows if a search exceeds it.
  void prepare_states(std::size_t num_states, std::size_t heap_reserve);

  [[nodiscard]] NodeId source() const noexcept { return source_; }
  [[nodiscard]] bool reached(NodeId v) const {
    return v < slots_.size() && slots_[v].stamp == generation_;
  }
  [[nodiscard]] double dist(NodeId v) const {
    return reached(v) ? slots_[v].dist : kInfCost;
  }
  [[nodiscard]] NodeId parent(NodeId v) const {
    return reached(v) ? parents_[v].parent : kInvalidNode;
  }
  [[nodiscard]] EdgeId parent_edge(NodeId v) const {
    return reached(v) ? parents_[v].edge : kInvalidEdge;
  }

  /// Kernel API: seeds the search at \p s (dist 0, no parent) and pushes it.
  void start(NodeId s) {
    source_ = s;
    relax(s, 0.0, kInvalidNode, kInvalidEdge);
    heap_clear();
    heap_push(0.0, s);
  }

  /// Kernel API: unconditional write + stamp of one node slot.
  void relax(NodeId v, double d, NodeId par, EdgeId via) {
    slots_[v] = Slot{d, generation_, 0};
    parents_[v] = ParentLink{par, via};
  }

  /// Kernel API: dist of a node known to be stamped (heap entries are).
  [[nodiscard]] double dist_unchecked(NodeId v) const {
    return slots_[v].dist;
  }

  /// Kernel API: dist if stamped this generation, else +inf. One fused
  /// 16-byte slot load and no bounds check — the relaxation loop's only
  /// random read (callers guarantee v < num_nodes via prepare()).
  [[nodiscard]] double dist_if_live(NodeId v) const {
    const Slot& s = slots_[v];
    return s.stamp == generation_ ? s.dist : kInfCost;
  }

  // --- min-heap (kernel API) ---------------------------------------------
  // Bottom-up binary heap over (key, node), with the key stored as its
  // IEEE-754 bit pattern: all keys the kernels produce are non-negative,
  // non-NaN doubles (sums of edge weights >= 0, or +inf), and for those the
  // unsigned integer order of the bit pattern equals numeric order — so
  // every sift comparison is one integer compare instead of two double
  // compares plus a tie-break branch. Pops are strictly in (key, node)
  // order (see HeapItem), so none of this can change a pop sequence.
  //
  // pop() walks the hole down to a leaf taking the smaller child (one
  // comparison per level), then bubbles the detached tail entry back up —
  // on Dijkstra's pop-heavy workload the tail is usually among the largest
  // keys, so it sinks (almost) all the way and the classic sift-down's
  // second comparison per level is pure overhead.

  void heap_clear() noexcept { heap_.clear(); }
  [[nodiscard]] bool heap_empty() const noexcept { return heap_.empty(); }

  void heap_push(double key, NodeId node) {
    const std::uint64_t kb = encode_key(key);
    std::size_t i = heap_.size();
    heap_.push_back(HeapEntry{kb, node, 0});
    while (i > 0) {
      const std::size_t up = (i - 1) >> 1;
      const HeapEntry p = heap_[up];
      if (p.key_bits < kb || (p.key_bits == kb && p.node <= node)) break;
      heap_[i] = p;
      i = up;
    }
    heap_[i] = HeapEntry{kb, node, 0};
  }

  HeapItem heap_pop() {
    const HeapEntry top = heap_.front();
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    const std::size_t size = heap_.size();
    if (size > 0) {
      HeapEntry* const h = heap_.data();
      std::size_t i = 0;
      for (;;) {
        std::size_t c = 2 * i + 1;
        if (c >= size) break;
        c += static_cast<std::size_t>(c + 1 < size &&
                                      entry_less(h[c + 1], h[c]));
        h[i] = h[c];
        i = c;
      }
      while (i > 0) {
        const std::size_t up = (i - 1) >> 1;
        if (!entry_less(tail, h[up])) break;
        h[i] = h[up];
        i = up;
      }
      h[i] = tail;
    }
    return HeapItem{std::bit_cast<double>(top.key_bits), top.node};
  }

  // --- BFS state (ring searches) ----------------------------------------

  /// Starts a new BFS over \p g; independent stamps from the Dijkstra side.
  void bfs_prepare(const Graph& g);

  [[nodiscard]] bool bfs_seen(NodeId v) const {
    return v < bfs_stamp_.size() && bfs_stamp_[v] == bfs_generation_;
  }
  [[nodiscard]] NodeId bfs_parent(NodeId v) const {
    return bfs_seen(v) ? bfs_parent_[v] : kInvalidNode;
  }
  void bfs_mark(NodeId v, NodeId par) {
    bfs_parent_[v] = par;
    bfs_stamp_[v] = bfs_generation_;
  }

  std::vector<NodeId>& bfs_visited() noexcept { return bfs_visited_; }
  std::vector<NodeId>& bfs_ring() noexcept { return bfs_ring_; }
  std::vector<NodeId>& bfs_scratch() noexcept { return bfs_scratch_; }

  // --- Mask buffers (kernel API) ----------------------------------------
  // Dedicated buffers so their lifetimes cannot collide: `base` holds a
  // materialized caller filter for the duration of a Yen run, `spur` is
  // rewritten per spur candidate, `scratch` backs one-shot legacy calls.

  EdgeMaskBuffer& base_mask() noexcept { return base_mask_; }
  EdgeMaskBuffer& spur_mask() noexcept { return spur_mask_; }
  EdgeMaskBuffer& scratch_mask() noexcept { return scratch_mask_; }

  // --- scratch vectors (kernel API) -------------------------------------
  // Typed spare buffers for kernels that need more than the per-node slots:
  // the multi-target pass keeps its pending list in scratch_nodes(), the
  // Steiner DP lays its cost table in scratch_f64() and its packed
  // backtrack table in scratch_u64(). Each kernel owns them only for the
  // duration of one call (same non-reentrancy contract as the heap).

  std::vector<NodeId>& scratch_nodes() noexcept { return scratch_nodes_; }
  std::vector<double>& scratch_f64() noexcept { return scratch_f64_; }
  std::vector<std::uint64_t>& scratch_u64() noexcept { return scratch_u64_; }

  // --- distance oracle attachment ---------------------------------------
  // An optional per-workspace pointer to a DistanceOracle (oracle.hpp). The
  // workspace is the one object already threaded through every search
  // consumer (PathOracle, the embedders, the serve workers), so attaching
  // the oracle here lets all of them opt into goal-directed pruning without
  // touching a single solver signature. Null (the default) means every
  // search runs the plain kernels — the pre-oracle code paths, bit for bit.
  // Consumers gate each use on oracle->matches(graph), so a stale or
  // wrong-graph pointer degrades to "no pruning", never to wrong paths.

  void set_distance_oracle(const DistanceOracle* oracle) noexcept {
    oracle_ = oracle;
  }
  [[nodiscard]] const DistanceOracle* distance_oracle() const noexcept {
    return oracle_;
  }

  // --- test hooks --------------------------------------------------------

  [[nodiscard]] std::uint32_t generation() const noexcept {
    return generation_;
  }
  /// Forces the generation counter, so tests can exercise the wrap-around
  /// path without running 2^32 searches.
  void debug_set_generation(std::uint32_t gen) noexcept { generation_ = gen; }

 private:
  /// Per-node search state, fused into one 16-byte record so the relax
  /// loop's stamp check and dist compare are a single cache access.
  struct Slot {
    double dist;
    std::uint32_t stamp;
    std::uint32_t pad;
  };
  /// Parent pointer + the edge it came through, fused for one 8-byte store
  /// per relaxation.
  struct ParentLink {
    NodeId parent;
    EdgeId edge;
  };
  /// Internal heap entry: the key's bit pattern plus the node.
  struct HeapEntry {
    std::uint64_t key_bits;
    NodeId node;
    std::uint32_t pad;
  };

  /// Non-negative non-NaN doubles order identically to their bit patterns
  /// compared as unsigned integers (sign bit 0 ⇒ bigger exponent/mantissa
  /// ⇒ bigger value, and +inf sorts after every finite). Negative keys
  /// cannot arise: edge weights are checked >= 0 at add_edge/set_weight.
  static std::uint64_t encode_key(double key) {
    DAGSFC_ASSERT(key >= 0.0);
    return std::bit_cast<std::uint64_t>(key);
  }
  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
    return a.key_bits != b.key_bits ? a.key_bits < b.key_bits
                                    : a.node < b.node;
  }

  // Dijkstra state, valid where a slot's stamp matches generation_.
  std::vector<Slot> slots_;
  std::vector<ParentLink> parents_;
  std::uint32_t generation_ = 0;
  NodeId source_ = kInvalidNode;

  std::vector<HeapEntry> heap_;

  // BFS arrays, independently stamped.
  std::vector<NodeId> bfs_parent_;
  std::vector<std::uint32_t> bfs_stamp_;
  std::uint32_t bfs_generation_ = 0;
  std::vector<NodeId> bfs_visited_;
  std::vector<NodeId> bfs_ring_;
  std::vector<NodeId> bfs_scratch_;

  EdgeMaskBuffer base_mask_;
  EdgeMaskBuffer spur_mask_;
  EdgeMaskBuffer scratch_mask_;

  std::vector<NodeId> scratch_nodes_;
  std::vector<double> scratch_f64_;
  std::vector<std::uint64_t> scratch_u64_;

  const DistanceOracle* oracle_ = nullptr;
};

}  // namespace dagsfc::graph
