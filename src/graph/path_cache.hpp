#pragma once
/// \file path_cache.hpp
/// Footprint-invalidated memoization of shortest-path computations.
///
/// The embedders spend most of their time re-running Dijkstra and Yen
/// between the same endpoints while the residual network has not changed:
/// BBE/MBBE re-derive the min-cost tree of a sub-solution's end node once
/// per parent, the exact solver re-runs per-merger Dijkstra for every DP
/// cell, and the baselines route every meta-path from scratch. A PathCache
/// memoizes those results keyed by (context, endpoints, k), where context
/// is the flow rate bit-cast to uint64 — the one extra input the usability
/// filter depends on — so flows of different rates never share entries.
///
/// ## Invalidation contract
///
/// Entries are kept alive by events, not by version keys: the owner (a
/// net::CapacityLedger) forwards every link-residual change through
/// on_link_debit() / on_link_credit() with the residual before and after.
/// A change matters to the cached entries of rate r only when it flips the
/// edge's usability at that rate (usable ⇔ residual ≥ r − eps); anything
/// short of a flip leaves the rate-r usable-edge set — and therefore every
/// rate-r result — untouched, so most commits evict nothing.
///
/// When a debit DOES flip an edge e unusable at rate r:
///   * Tree entries at rate r whose parent-edge footprint avoids e are
///     kept; the rest are evicted. This is exact, not heuristic: Dijkstra's
///     effective pops happen in (final-dist, node) order and the final
///     parent of each node is the first relaxation to reach its final
///     distance, so a recompute without e — an edge no surviving tree
///     parent uses — reproduces every dist/parent/parent_edge bitwise.
///   * Yen entries at rate r are evicted wholesale. Intersection-only
///     eviction would be wrong for k-paths: a spur path using e can mask
///     an equal-cost e-free alternative from the candidate pool, so a
///     result that never mentions e may still change when e disappears.
/// A credit that flips e usable evicts every rate-r entry of both kinds —
/// a newly usable edge can improve (or lexicographically re-rank) paths
/// anywhere. Instance-capacity changes never reach the cache; edge
/// usability depends only on link residuals.
///
/// Entries are shared_ptr-owned so callers can hold results across later
/// cache calls without being invalidated by eviction. The cache is NOT
/// thread-safe; it is owned per-CapacityLedger, and ledgers are not shared
/// across threads.

#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace dagsfc::graph {

/// Observability counters for the solver path queries. The `*_calls`
/// fields count actual computations (cache misses included, hits
/// excluded); hits/misses/evictions count cache events only. `bfs_calls`
/// tallies the backtracking engine's ring searches and `steiner_calls` the
/// exact solver's multicast pricing, so the inter-layer path work is
/// visible alongside the Dijkstra/Yen unicast work.
struct PathQueryCounters {
  std::size_t dijkstra_calls = 0;
  std::size_t yen_calls = 0;
  std::size_t bfs_calls = 0;
  std::size_t steiner_calls = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t evictions = 0;
  // ALT-oracle pruning work (goal-directed searches only): how many
  // prune tests the kernels evaluated and how many fired. Their ratio is
  // exported as dagsfc_oracle_pruned_ratio; both stay 0 with no oracle
  // attached.
  std::size_t oracle_tested = 0;
  std::size_t oracle_pruned = 0;

  PathQueryCounters& operator+=(const PathQueryCounters& o) {
    dijkstra_calls += o.dijkstra_calls;
    yen_calls += o.yen_calls;
    bfs_calls += o.bfs_calls;
    steiner_calls += o.steiner_calls;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    evictions += o.evictions;
    oracle_tested += o.oracle_tested;
    oracle_pruned += o.oracle_pruned;
    return *this;
  }

  /// hits / (hits + misses); 0 when the cache was never consulted.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t n = cache_hits + cache_misses;
    return n ? static_cast<double>(cache_hits) / static_cast<double>(n) : 0.0;
  }
};

/// Tallies of the event-driven invalidation path, for tests and telemetry.
/// `flips` counts (mutation, cached-rate) pairs where the edge's usability
/// actually flipped — the only events that evict anything.
struct InvalidationStats {
  std::size_t link_debits = 0;
  std::size_t link_credits = 0;
  std::size_t flips = 0;
  std::size_t trees_evicted = 0;
  std::size_t yens_evicted = 0;
};

class PathCache {
 public:
  /// \p max_entries bounds trees and k-path lists separately; when an
  /// insert would exceed the bound the store is cleared (entries are all
  /// current under event invalidation, so there is no stale tier to shed
  /// first).
  explicit PathCache(std::size_t max_entries = 1024)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// Full Dijkstra tree from \p source under \p filter. Computes on miss.
  /// \p context must be the flow rate bit-cast to uint64 — the invalidation
  /// hooks decode it to evaluate usability flips.
  [[nodiscard]] std::shared_ptr<const ShortestPathTree> tree(
      const Graph& g, NodeId source, std::uint64_t context,
      const EdgeFilter& filter, PathQueryCounters& c);

  /// Flat-tier variant: misses compute through \p ws with \p mask (null ⇒
  /// all edges). The caller guarantees the mask matches the current
  /// residual state and that every later residual change is forwarded via
  /// the on_link_* hooks — exactly what CapacityLedger does.
  [[nodiscard]] std::shared_ptr<const ShortestPathTree> tree(
      const Graph& g, NodeId source, std::uint64_t context,
      const EdgeMask* mask, SearchWorkspace& ws, PathQueryCounters& c);

  /// Yen's k cheapest loopless paths source → target under \p filter.
  [[nodiscard]] std::shared_ptr<const std::vector<Path>> k_paths(
      const Graph& g, NodeId source, NodeId target, std::size_t k,
      std::uint64_t context, const EdgeFilter& filter, PathQueryCounters& c);

  /// Flat-tier variant of k_paths, same contract as the flat tree().
  [[nodiscard]] std::shared_ptr<const std::vector<Path>> k_paths(
      const Graph& g, NodeId source, NodeId target, std::size_t k,
      std::uint64_t context, const EdgeMask* mask, SearchWorkspace& ws,
      PathQueryCounters& c);

  /// Residual-change notifications (see the invalidation contract above).
  /// \p eps is the owner's feasibility tolerance: usable ⇔ residual ≥
  /// rate − eps, evaluated with the same expression the ledger uses so the
  /// cache and the admission checks never disagree on a flip.
  void on_link_debit(EdgeId e, double before, double after, double eps);
  void on_link_credit(EdgeId e, double before, double after, double eps);

  [[nodiscard]] std::size_t num_trees() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] std::size_t num_k_paths() const noexcept {
    return yens_.size();
  }
  [[nodiscard]] const InvalidationStats& invalidation_stats() const noexcept {
    return inval_;
  }

  void clear() {
    trees_.clear();
    yens_.clear();
    tree_contexts_.clear();
    yen_contexts_.clear();
  }

 private:
  struct TreeKey {
    std::uint64_t context;
    NodeId source;
    auto operator<=>(const TreeKey&) const = default;
  };
  struct YenKey {
    std::uint64_t context;
    NodeId source;
    NodeId target;
    std::size_t k;
    auto operator<=>(const YenKey&) const = default;
  };
  /// A cached tree plus its parent-edge footprint (sorted, deduplicated)
  /// for the intersection test on debit flips.
  struct TreeEntry {
    std::shared_ptr<const ShortestPathTree> tree;
    std::vector<EdgeId> edges;
  };

  static bool usable(double residual, double rate, double eps) noexcept {
    return residual >= rate - eps;
  }
  static std::vector<EdgeId> footprint(const ShortestPathTree& t);

  /// Refcounted index of the distinct contexts present in one store,
  /// sorted by context bits. Mutation hooks consult it first: with no
  /// cached rate flipping (the overwhelmingly common case — e.g. every
  /// journal entry a replica replays during sync_from), the hook is
  /// O(distinct rates), touches no entries and allocates nothing. Only
  /// actual flips walk entries, and then only the flipped context's
  /// contiguous range of the (context-first ordered) map.
  using ContextIndex = std::vector<std::pair<std::uint64_t, std::size_t>>;
  static void index_add(ContextIndex& index, std::uint64_t context);
  static void index_remove(ContextIndex& index, std::uint64_t context,
                           std::size_t n);

  /// Appends the contexts of \p index whose usability of a residual change
  /// flipped in the given direction.
  static void flipped_contexts(const ContextIndex& index, double before,
                               double after, double eps, bool debit,
                               std::vector<std::uint64_t>& out);

  /// Evicts every tree / k-path entry cached under \p context.
  void evict_tree_context(std::uint64_t context);
  void evict_yen_context(std::uint64_t context);

  /// Clears \p store (and its context index) if one more insert would not
  /// fit under max_entries_.
  template <typename Store>
  void make_room(Store& store, ContextIndex& index, PathQueryCounters& c);

  std::size_t max_entries_;
  std::map<TreeKey, TreeEntry> trees_;
  std::map<YenKey, std::shared_ptr<const std::vector<Path>>> yens_;
  ContextIndex tree_contexts_;
  ContextIndex yen_contexts_;
  InvalidationStats inval_;
};

}  // namespace dagsfc::graph
