#pragma once
/// \file path_cache.hpp
/// Version-keyed memoization of shortest-path computations.
///
/// The embedders spend most of their time re-running Dijkstra and Yen
/// between the same endpoints while the residual network has not changed:
/// BBE/MBBE re-derive the min-cost tree of a sub-solution's end node once
/// per parent, the exact solver re-runs per-merger Dijkstra for every DP
/// cell, and the baselines route every meta-path from scratch. A PathCache
/// memoizes those results keyed by (version, context, endpoints, k), where
///
///   * version  — a monotonic counter the owner bumps whenever the set of
///     usable edges may have changed (net::CapacityLedger::epoch()); stale
///     entries are never returned and are evicted lazily,
///   * context  — an opaque discriminator for anything else the edge filter
///     depends on (the flow rate, bit-cast), so flows with different rates
///     never share entries.
///
/// Entries are shared_ptr-owned so callers can hold results across later
/// cache calls without being invalidated by eviction. The cache is NOT
/// thread-safe; it is owned per-CapacityLedger, and ledgers are not shared
/// across threads.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"

namespace dagsfc::graph {

/// Observability counters for the solver path queries. The `*_calls`
/// fields count actual computations (cache misses included, hits
/// excluded); hits/misses/evictions count cache events only. `bfs_calls`
/// tallies the backtracking engine's ring searches and `steiner_calls` the
/// exact solver's multicast pricing, so the inter-layer path work is
/// visible alongside the Dijkstra/Yen unicast work.
struct PathQueryCounters {
  std::size_t dijkstra_calls = 0;
  std::size_t yen_calls = 0;
  std::size_t bfs_calls = 0;
  std::size_t steiner_calls = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t evictions = 0;

  PathQueryCounters& operator+=(const PathQueryCounters& o) {
    dijkstra_calls += o.dijkstra_calls;
    yen_calls += o.yen_calls;
    bfs_calls += o.bfs_calls;
    steiner_calls += o.steiner_calls;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    evictions += o.evictions;
    return *this;
  }

  /// hits / (hits + misses); 0 when the cache was never consulted.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t n = cache_hits + cache_misses;
    return n ? static_cast<double>(cache_hits) / static_cast<double>(n) : 0.0;
  }
};

class PathCache {
 public:
  /// \p max_entries bounds trees and k-path lists separately; when an
  /// insert would exceed the bound, every entry of an older version is
  /// evicted first, then (if all entries are current) the whole store.
  explicit PathCache(std::size_t max_entries = 1024)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// Full Dijkstra tree from \p source under \p filter. Computes on miss.
  [[nodiscard]] std::shared_ptr<const ShortestPathTree> tree(
      const Graph& g, NodeId source, std::uint64_t version,
      std::uint64_t context, const EdgeFilter& filter, PathQueryCounters& c);

  /// Flat-tier variant: misses compute through \p ws with \p mask (null ⇒
  /// all edges). The caller guarantees (version, context) keys the mask
  /// contents, exactly as it keys the filter in the legacy overload.
  [[nodiscard]] std::shared_ptr<const ShortestPathTree> tree(
      const Graph& g, NodeId source, std::uint64_t version,
      std::uint64_t context, const EdgeMask* mask, SearchWorkspace& ws,
      PathQueryCounters& c);

  /// Yen's k cheapest loopless paths source → target under \p filter.
  [[nodiscard]] std::shared_ptr<const std::vector<Path>> k_paths(
      const Graph& g, NodeId source, NodeId target, std::size_t k,
      std::uint64_t version, std::uint64_t context, const EdgeFilter& filter,
      PathQueryCounters& c);

  /// Flat-tier variant of k_paths, same keying contract as the flat tree().
  [[nodiscard]] std::shared_ptr<const std::vector<Path>> k_paths(
      const Graph& g, NodeId source, NodeId target, std::size_t k,
      std::uint64_t version, std::uint64_t context, const EdgeMask* mask,
      SearchWorkspace& ws, PathQueryCounters& c);

  [[nodiscard]] std::size_t num_trees() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] std::size_t num_k_paths() const noexcept {
    return yens_.size();
  }

  void clear() {
    trees_.clear();
    yens_.clear();
  }

 private:
  struct TreeKey {
    std::uint64_t version;
    std::uint64_t context;
    NodeId source;
    auto operator<=>(const TreeKey&) const = default;
  };
  struct YenKey {
    std::uint64_t version;
    std::uint64_t context;
    NodeId source;
    NodeId target;
    std::size_t k;
    auto operator<=>(const YenKey&) const = default;
  };

  /// Drops stale-version entries of \p store (then everything, if needed)
  /// so one more insert fits under max_entries_.
  template <typename Store>
  void make_room(Store& store, std::uint64_t version, PathQueryCounters& c);

  std::size_t max_entries_;
  std::map<TreeKey, std::shared_ptr<const ShortestPathTree>> trees_;
  std::map<YenKey, std::shared_ptr<const std::vector<Path>>> yens_;
};

}  // namespace dagsfc::graph
