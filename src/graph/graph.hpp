#pragma once
/// \file graph.hpp
/// Weighted undirected simple graph — the structural substrate for the
/// target network (paper §3.2: G = (V, E), bidirectional links).
///
/// Nodes and edges are dense integer ids, so algorithm working sets are flat
/// vectors indexed by id (no hashing on hot paths). Edge weights here carry
/// the per-unit-rate link price c_e; capacities and VNF inventory live one
/// layer up in net::Network.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace dagsfc::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// An undirected edge endpoint pair plus its weight (link price).
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double weight = 0.0;

  /// The endpoint opposite \p from. Requires from ∈ {u, v}.
  [[nodiscard]] NodeId other(NodeId from) const {
    DAGSFC_CHECK(from == u || from == v);
    return from == u ? v : u;
  }
};

/// Incidence record stored per node: the edge and the neighbor it leads to.
struct Incidence {
  EdgeId edge = kInvalidEdge;
  NodeId neighbor = kInvalidNode;
};

/// A walk through the graph: node sequence plus the edges between
/// consecutive nodes (edges.size() == nodes.size() - 1). An empty path has
/// no nodes; a zero-length path has one node and no edges.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double cost = 0.0;

  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }
  [[nodiscard]] std::size_t length() const noexcept { return edges.size(); }
  [[nodiscard]] NodeId source() const {
    DAGSFC_CHECK(!nodes.empty());
    return nodes.front();
  }
  [[nodiscard]] NodeId target() const {
    DAGSFC_CHECK(!nodes.empty());
    return nodes.back();
  }
};

class Graph {
 public:
  Graph() = default;
  /// Creates \p n isolated nodes.
  explicit Graph(std::size_t n) : adjacency_(n) {}

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }

  /// Appends an isolated node and returns its id.
  NodeId add_node();

  /// Adds an undirected edge u—v with weight \p weight (≥ 0). Rejects self
  /// loops and parallel edges (the paper's networks are simple graphs).
  EdgeId add_edge(NodeId u, NodeId v, double weight);

  /// Updates the weight of an existing edge.
  void set_weight(EdgeId e, double weight);

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    DAGSFC_CHECK(e < edges_.size());
    return edges_[e];
  }

  /// Incidence list of \p v: every (edge, neighbor) pair.
  [[nodiscard]] std::span<const Incidence> neighbors(NodeId v) const {
    DAGSFC_CHECK(v < adjacency_.size());
    return adjacency_[v];
  }

  [[nodiscard]] std::size_t degree(NodeId v) const {
    return neighbors(v).size();
  }

  /// Id of the edge u—v if present.
  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;

  [[nodiscard]] bool has_node(NodeId v) const noexcept {
    return v < adjacency_.size();
  }

  /// 2·|E| / |V| — the "network connectivity" knob of the paper's §5.1.
  [[nodiscard]] double average_degree() const noexcept;

  /// Total weight of a path and structural validity against this graph.
  [[nodiscard]] double path_cost(const Path& p) const;
  [[nodiscard]] bool path_valid(const Path& p) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<Incidence>> adjacency_;
};

/// True iff every node is reachable from node 0 (or the graph is empty).
[[nodiscard]] bool is_connected(const Graph& g);

/// Number of connected components.
[[nodiscard]] std::size_t component_count(const Graph& g);

}  // namespace dagsfc::graph
