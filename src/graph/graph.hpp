#pragma once
/// \file graph.hpp
/// Weighted undirected simple graph — the structural substrate for the
/// target network (paper §3.2: G = (V, E), bidirectional links).
///
/// Nodes and edges are dense integer ids, so algorithm working sets are flat
/// vectors indexed by id (no hashing on hot paths). Edge weights here carry
/// the per-unit-rate link price c_e; capacities and VNF inventory live one
/// layer up in net::Network.
///
/// Besides the per-node incidence lists the graph maintains a packed CSR
/// (compressed sparse row) view — one offset array plus one contiguous
/// Incidence array — built lazily on first use and invalidated by structural
/// mutation. The search kernels (dijkstra/yen/steiner/bfs) iterate the CSR
/// rows so relaxation loops stream one flat array instead of chasing
/// vector<vector> pointers. CSR row order equals incidence-list insertion
/// order, so switching views never changes any deterministic tie-break.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace dagsfc::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

/// Predicate limiting which edges a search may traverse (e.g. links with
/// remaining bandwidth). Absent ⇒ all edges usable. This is the flexible,
/// slow path; the search kernels prefer an EdgeMask (edge_mask.hpp), which
/// the hot loops can test with one inlined bit probe.
using EdgeFilter = std::function<bool(EdgeId)>;

/// An undirected edge endpoint pair plus its weight (link price).
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double weight = 0.0;

  /// The endpoint opposite \p from. Requires from ∈ {u, v}.
  [[nodiscard]] NodeId other(NodeId from) const {
    DAGSFC_CHECK(from == u || from == v);
    return from == u ? v : u;
  }
};

/// Incidence record stored per node: the edge and the neighbor it leads to.
struct Incidence {
  EdgeId edge = kInvalidEdge;
  NodeId neighbor = kInvalidNode;
};

/// A walk through the graph: node sequence plus the edges between
/// consecutive nodes (edges.size() == nodes.size() - 1). An empty path has
/// no nodes; a zero-length path has one node and no edges.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double cost = 0.0;

  [[nodiscard]] bool empty() const noexcept { return nodes.empty(); }
  [[nodiscard]] std::size_t length() const noexcept { return edges.size(); }
  [[nodiscard]] NodeId source() const {
    DAGSFC_CHECK(!nodes.empty());
    return nodes.front();
  }
  [[nodiscard]] NodeId target() const {
    DAGSFC_CHECK(!nodes.empty());
    return nodes.back();
  }
};

/// Read-only packed adjacency: offsets has num_nodes()+1 entries and
/// incidence holds every (edge, neighbor) record, rows back to back in node
/// order. weights runs parallel to incidence (weights[s] is the weight of
/// incidence[s].edge) so relaxation loops stream two flat arrays instead of
/// chasing a random edge-array load per arc; set_weight writes the cached
/// copies through. Spans point into the owning Graph — they are invalidated
/// by the next structural mutation, so do not hold a view across
/// add_node/add_edge.
struct CsrView {
  std::span<const std::uint32_t> offsets;
  std::span<const Incidence> incidence;
  std::span<const double> weights;

  [[nodiscard]] std::span<const Incidence> row(NodeId v) const {
    return incidence.subspan(offsets[v], offsets[v + 1] - offsets[v]);
  }
};

class Graph {
 public:
  Graph() = default;
  /// Creates \p n isolated nodes.
  explicit Graph(std::size_t n) : adjacency_(n) {}

  // The CSR cache (atomic flag + build mutex) is not copyable; copies and
  // moved-to graphs rebuild their view lazily on first use. Revision stamps
  // transfer with the data they describe (a copy has the same structure and
  // weights as its original, so carrying the stamps over keeps any oracle
  // keyed on them honest either way — oracles additionally key on the graph's
  // address, so cross-object collisions cannot happen).
  Graph(const Graph& other)
      : edges_(other.edges_), adjacency_(other.adjacency_) {
    copy_revisions_from(other);
  }
  Graph& operator=(const Graph& other) {
    if (this != &other) {
      edges_ = other.edges_;
      adjacency_ = other.adjacency_;
      csr_fresh_.store(false, std::memory_order_release);
      copy_revisions_from(other);
    }
    return *this;
  }
  Graph(Graph&& other) noexcept
      : edges_(std::move(other.edges_)),
        adjacency_(std::move(other.adjacency_)),
        csr_offsets_(std::move(other.csr_offsets_)),
        csr_incidence_(std::move(other.csr_incidence_)),
        csr_weights_(std::move(other.csr_weights_)),
        csr_edge_slots_(std::move(other.csr_edge_slots_)) {
    csr_fresh_.store(other.csr_fresh_.load(std::memory_order_acquire),
                     std::memory_order_release);
    other.csr_fresh_.store(false, std::memory_order_release);
    copy_revisions_from(other);
  }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) {
      edges_ = std::move(other.edges_);
      adjacency_ = std::move(other.adjacency_);
      csr_offsets_ = std::move(other.csr_offsets_);
      csr_incidence_ = std::move(other.csr_incidence_);
      csr_weights_ = std::move(other.csr_weights_);
      csr_edge_slots_ = std::move(other.csr_edge_slots_);
      csr_fresh_.store(other.csr_fresh_.load(std::memory_order_acquire),
                       std::memory_order_release);
      other.csr_fresh_.store(false, std::memory_order_release);
      copy_revisions_from(other);
    }
    return *this;
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return edges_.size();
  }

  /// Appends an isolated node and returns its id.
  NodeId add_node();

  /// Adds an undirected edge u—v with weight \p weight (≥ 0). Rejects self
  /// loops and parallel edges (the paper's networks are simple graphs).
  EdgeId add_edge(NodeId u, NodeId v, double weight);

  /// Updates the weight of an existing edge. The CSR view caches weights
  /// alongside the incidence records, so this writes the (at most two)
  /// cached copies through instead of invalidating the view — repricing
  /// edges between searches never triggers a rebuild.
  void set_weight(EdgeId e, double weight);

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    DAGSFC_CHECK(e < edges_.size());
    return edges_[e];
  }

  /// The whole edge array, indexed by EdgeId — the flat companion to csr()
  /// for relaxation loops and edge-mask construction.
  [[nodiscard]] std::span<const Edge> edges() const noexcept {
    return edges_;
  }

  /// Incidence list of \p v: every (edge, neighbor) pair.
  [[nodiscard]] std::span<const Incidence> neighbors(NodeId v) const {
    DAGSFC_CHECK(v < adjacency_.size());
    return adjacency_[v];
  }

  [[nodiscard]] std::size_t degree(NodeId v) const {
    return neighbors(v).size();
  }

  /// Packed adjacency for the search kernels, built on first call and
  /// invalidated by add_node/add_edge. The lazy build is guarded so that
  /// any number of threads may call csr() on a *quiescent* graph (the usual
  /// read-mostly pattern: build topology, then search from many workers);
  /// mutating concurrently with readers is undefined, exactly as before.
  [[nodiscard]] CsrView csr() const;

  /// Id of the edge u—v if present. Scans the incidence list of the
  /// lower-degree endpoint, so a leaf—hub probe costs O(deg(leaf)), not
  /// O(deg(hub)).
  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;

  /// The endpoint whose incidence list find_edge(u, v) scans — exposed so
  /// the degree-asymmetry contract is directly testable.
  [[nodiscard]] NodeId find_edge_probe_endpoint(NodeId u, NodeId v) const {
    DAGSFC_CHECK(u < adjacency_.size() && v < adjacency_.size());
    return adjacency_[u].size() <= adjacency_[v].size() ? u : v;
  }

  [[nodiscard]] bool has_node(NodeId v) const noexcept {
    return v < adjacency_.size();
  }

  /// Revision stamps for derived-data invalidation (e.g. the ALT distance
  /// oracle in oracle.hpp). structure_revision() moves on add_node/add_edge
  /// — anything keyed on the topology must be rebuilt; weight_revision()
  /// moves on set_weight (and on structural mutation, since a new edge also
  /// carries a new weight) — distance tables need a refresh but landmark
  /// positions and the CSR view stay valid. Relaxed atomics so quiescent
  /// concurrent readers (the usual build-then-search pattern) can poll them
  /// without racing the flags themselves; mutating concurrently with
  /// readers is undefined, same contract as every other mutator.
  [[nodiscard]] std::uint64_t structure_revision() const noexcept {
    return structure_rev_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t weight_revision() const noexcept {
    return weight_rev_.load(std::memory_order_relaxed);
  }

  /// 2·|E| / |V| — the "network connectivity" knob of the paper's §5.1.
  [[nodiscard]] double average_degree() const noexcept;

  /// Total weight of a path and structural validity against this graph.
  [[nodiscard]] double path_cost(const Path& p) const;
  [[nodiscard]] bool path_valid(const Path& p) const;

 private:
  void build_csr() const;

  void copy_revisions_from(const Graph& other) noexcept {
    structure_rev_.store(other.structure_rev_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    weight_rev_.store(other.weight_rev_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<Incidence>> adjacency_;

  // Lazily derived, logically-const packed view (double-checked build).
  // csr_weights_ mirrors edges_[].weight per CSR slot; csr_edge_slots_ maps
  // each edge to its two slots so set_weight can write the mirror through.
  mutable std::vector<std::uint32_t> csr_offsets_;
  mutable std::vector<Incidence> csr_incidence_;
  mutable std::vector<double> csr_weights_;
  mutable std::vector<std::array<std::uint32_t, 2>> csr_edge_slots_;
  mutable std::atomic<bool> csr_fresh_{false};
  mutable std::mutex csr_mu_;

  std::atomic<std::uint64_t> structure_rev_{0};
  std::atomic<std::uint64_t> weight_rev_{0};
};

/// True iff every node is reachable from node 0 (or the graph is empty).
[[nodiscard]] bool is_connected(const Graph& g);

/// Number of connected components.
[[nodiscard]] std::size_t component_count(const Graph& g);

}  // namespace dagsfc::graph
