#pragma once
/// \file topologies.hpp
/// Structured network topologies used in NFV embedding studies, alongside
/// the paper's random generator: ring, star, line, 2-D grid/torus,
/// two-tier leaf-spine, three-tier fat-tree (k-ary pods), and the Waxman
/// random-geometric model common in WAN simulation. All constructors
/// return simple connected graphs with uniform unit edge weights — callers
/// (net layer / scenario generators) assign link prices afterwards.

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace dagsfc::graph {

/// Cycle over n ≥ 3 nodes.
[[nodiscard]] Graph make_ring(std::size_t n);

/// Hub node 0 with n−1 leaves; n ≥ 2.
[[nodiscard]] Graph make_star(std::size_t n);

/// Path 0—1—…—(n−1); n ≥ 1.
[[nodiscard]] Graph make_line(std::size_t n);

/// rows×cols lattice; wrap=true adds the torus wrap-around links
/// (wrap needs ≥ 3 nodes along a wrapped dimension to stay simple).
[[nodiscard]] Graph make_grid(std::size_t rows, std::size_t cols,
                              bool wrap = false);

/// Two-tier Clos: nodes [0, spines) are spines, the rest leaves; every
/// leaf connects to every spine. Requires 1 ≤ spines < n.
[[nodiscard]] Graph make_leaf_spine(std::size_t n, std::size_t spines);

/// Canonical k-ary fat-tree (k even, ≥ 2): (k/2)² core switches, k pods of
/// k/2 aggregation + k/2 edge switches — 5k²/4 nodes total, hosts omitted.
/// Node order: cores, then per pod aggregation then edge.
[[nodiscard]] Graph make_fat_tree(std::size_t k);

struct WaxmanOptions {
  std::size_t num_nodes = 100;
  double alpha = 0.4;  ///< link-probability scale
  double beta = 0.2;   ///< distance decay (larger ⇒ longer links likelier)
};

/// Waxman random geometric graph on the unit square:
/// P(u,v) = alpha · exp(−dist(u,v) / (beta·√2)); a random spanning tree is
/// added first so the result is always connected.
[[nodiscard]] Graph make_waxman(Rng& rng, const WaxmanOptions& opts);

}  // namespace dagsfc::graph
