#pragma once
/// \file solution.hpp
/// Embedding solutions and the central cost/feasibility evaluator.
///
/// Every algorithm in this library (exact, BBE, MBBE, RANV, MINV) produces
/// an EmbeddingSolution and is scored by the same Evaluator, which
/// implements the paper's objective (1) with the reuse counts of formulas
/// (7)–(10):
///   * VNF rental cost   Σ_v Σ_i α_{v,i} · c_{v,f(i)} · z,
///   * link cost         Σ_e α_e · c_e · z,
/// where a link carried by several *inter-layer* real-paths of the same
/// layer is charged once (multicast, formula (9)) while *inner-layer*
/// real-paths charge independently (formula (10)).
///
/// Capacity accounting is symmetric to cost: each counted use consumes the
/// flow rate R from the instance/link (constraints (2)–(3)).

#include <string>
#include <vector>

#include "core/model.hpp"
#include "graph/graph.hpp"
#include "net/ledger.hpp"

namespace dagsfc::core {

/// A complete embedding: one hosting node per slot, one real-path per
/// meta-path (indexed parallel to ModelIndex::inter_paths()/inner_paths()).
/// A meta-path whose endpoints share a node is the single-node zero-cost
/// path.
struct EmbeddingSolution {
  std::vector<NodeId> placement;
  std::vector<graph::Path> inter_paths;
  std::vector<graph::Path> inner_paths;
};

/// Reuse counts α after applying the multicast discount.
struct ResourceUsage {
  std::vector<std::uint32_t> link_uses;      ///< per EdgeId
  std::vector<std::uint32_t> instance_uses;  ///< per InstanceId
};

class Evaluator {
 public:
  explicit Evaluator(const ModelIndex& index) : index_(&index) {}

  [[nodiscard]] const ModelIndex& index() const noexcept { return *index_; }

  /// The network node an endpoint resolves to under \p sol.
  [[nodiscard]] NodeId resolve(const SlotRef& ref,
                               const EmbeddingSolution& sol) const;

  /// Structural validation: placements host the right VNF types, every
  /// meta-path is instantiated by a real-path whose endpoints match the
  /// placement, paths are edge-distinct walks of the topology. Returns a
  /// human-readable message per violation; empty means valid.
  [[nodiscard]] std::vector<std::string> validate(
      const EmbeddingSolution& sol) const;

  /// Reuse counts per formulas (7)–(10). Requires a valid solution.
  [[nodiscard]] ResourceUsage usage(const EmbeddingSolution& sol) const;

  /// Objective (1). Requires a valid solution.
  [[nodiscard]] double cost(const EmbeddingSolution& sol) const;
  [[nodiscard]] double cost(const ResourceUsage& usage) const;

  /// Split of the objective for reporting: {vnf rental, link}.
  [[nodiscard]] std::pair<double, double> cost_breakdown(
      const ResourceUsage& usage) const;

  /// One priced term of objective (1). For VNF terms `uses` is α_{v,i} and
  /// `raw_uses == uses`; for link terms `uses` is α_e after the formula (9)
  /// multicast discount and `raw_uses` counts every real-path incidence
  /// (inter + inner), so `raw_uses − uses` is the sharing saved on that link.
  struct CostTerm {
    bool vnf = false;            ///< true: instance rental, false: link
    std::uint32_t id = 0;        ///< InstanceId or EdgeId
    std::uint32_t uses = 0;      ///< charged α
    std::uint32_t raw_uses = 0;  ///< pre-discount path incidences
    double price = 0.0;          ///< unit price c_{v,f(i)} or c_e
    double value = 0.0;          ///< uses · price · z
  };

  /// Per-term expansion of objective (1): VNF terms in instance-id order,
  /// then link terms in edge-id order — the exact terms, arithmetic, and
  /// ordering of cost_breakdown(), so summing the VNF values then the link
  /// values and adding the two sums is bitwise-equal to cost().
  [[nodiscard]] std::vector<CostTerm> cost_terms(
      const EmbeddingSolution& sol) const;

  /// Capacity check of constraints (2)–(3) against residual state.
  [[nodiscard]] bool feasible(const ResourceUsage& usage,
                              const net::CapacityLedger& ledger) const;

  /// Debits the ledger by usage·R. Contract-checked; call feasible() first.
  void commit(const ResourceUsage& usage, net::CapacityLedger& ledger) const;

  /// Credits the ledger by usage·R — the inverse of commit(), used when a
  /// flow departs (dynamic admission) or a tentative reservation unwinds.
  void release(const ResourceUsage& usage, net::CapacityLedger& ledger) const;

 private:
  const ModelIndex* index_;
};

}  // namespace dagsfc::core
