#include "core/exact.hpp"

#include <algorithm>
#include <map>

#include "core/path_oracle.hpp"
#include "core/solver_detail.hpp"
#include "graph/dijkstra.hpp"
#include "graph/steiner.hpp"
#include "util/trace.hpp"

namespace dagsfc::core {

namespace {

using detail::Enumerator;
using detail::path_in_tree;
using detail::trivial_path;

struct BackPointer {
  NodeId prev_end = graph::kInvalidNode;
  std::vector<NodeId> assignment;          // per VNF slot (merger excluded)
  std::vector<graph::EdgeId> tree_edges;   // inter-layer multicast tree
};

/// Per-layer DP cell: cheapest raw (un-scaled-by-z) cost ending at a node.
struct Cell {
  double cost = graph::kInfCost;
  BackPointer back;
};

}  // namespace

SolveResult ExactEmbedder::do_solve(const ModelIndex& index,
                                    const net::CapacityLedger& ledger,
                                    Rng& /*rng*/, TraceSink* trace,
                                    graph::SearchWorkspace* workspace) const {
  const Tracer tr(trace);
  const EmbeddingProblem& prob = index.problem();
  const net::Network& net = prob.net();
  const graph::Graph& g = net.topology();
  const sfc::DagSfc& dag = prob.dag();
  const net::VnfCatalog& catalog = net.catalog();
  const double rate = prob.flow.rate;
  const std::size_t omega = dag.num_layers();

  SolveResult result;

  PathOracle oracle(g, ledger, rate, workspace);
  auto record_counters = [&]() { result.path_queries = oracle.counters(); };

  // Hosting candidates per layer slot type, capacity-screened.
  auto hosts = [&](VnfTypeId t) {
    std::vector<NodeId> out;
    for (NodeId v : net.nodes_with(t)) {
      if (ledger.node_offers(v, t, rate)) out.push_back(v);
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  // Work estimate: refuse instances beyond the budget instead of hanging.
  double work = 0.0;
  std::size_t prev_ends = 1;
  for (std::size_t l = 0; l < omega; ++l) {
    const sfc::Layer& layer = dag.layer(l);
    double assignments = 1.0;
    for (VnfTypeId t : layer.vnfs) {
      assignments *= static_cast<double>(std::max<std::size_t>(
          1, net.nodes_with(t).size()));
    }
    const std::size_t ends = layer.has_merger()
                                 ? net.nodes_with(catalog.merger()).size()
                                 : net.nodes_with(layer.vnfs[0]).size();
    work += static_cast<double>(prev_ends) * assignments;
    prev_ends = std::max<std::size_t>(1, ends);
    if (work > static_cast<double>(opts_.max_work)) {
      result.failure_reason = "instance too large for the exact solver";
      record_counters();
      return result;
    }
  }

  auto price_of = [&](NodeId v, VnfTypeId t) {
    return net.instance(*net.find_instance(v, t)).price;
  };

  // dp[v] after each layer; start: virtual layer 0 at the source, cost 0.
  std::map<NodeId, Cell> dp;
  dp[prob.flow.source] = Cell{0.0, {}};
  std::vector<std::map<NodeId, Cell>> trail;  // dp per layer, for rebuild

  for (std::size_t l = 0; l < omega; ++l) {
    DAGSFC_TRACE_SCOPE("exact/dp_layer");
    const sfc::Layer& layer = dag.layer(l);
    std::map<NodeId, Cell> next;
    const std::size_t cells_in = dp.size();

    for (const auto& [p, cell] : dp) {
      if (cell.cost == graph::kInfCost) continue;
      if (!layer.has_merger()) {
        const VnfTypeId t = layer.vnfs[0];
        const auto sp = oracle.tree(p);
        for (NodeId v : hosts(t)) {
          if (sp->dist[v] == graph::kInfCost) continue;
          const double c = cell.cost + price_of(v, t) + sp->dist[v];
          auto& slot = next[v];
          if (c < slot.cost) {
            slot.cost = c;
            slot.back = BackPointer{p, {v}, {}};
            ++result.expanded_sub_solutions;
          }
        }
        continue;
      }

      std::vector<std::vector<NodeId>> choices;
      choices.reserve(layer.vnfs.size());
      for (VnfTypeId t : layer.vnfs) choices.push_back(hosts(t));

      // Distances from each merger candidate, shared across assignments
      // (and across DP cells and layers, via the path cache).
      std::map<NodeId, std::shared_ptr<const graph::ShortestPathTree>>
          from_merger;
      for (NodeId m : hosts(catalog.merger())) {
        from_merger.emplace(m, oracle.tree(m));
      }
      if (from_merger.empty()) continue;

      for (Enumerator en(choices); !en.done(); en.advance()) {
        const std::vector<NodeId> assign = en.current();
        std::vector<NodeId> terminals{p};
        terminals.insert(terminals.end(), assign.begin(), assign.end());
        const auto tree = oracle.steiner(terminals);
        if (!tree) continue;
        double base = cell.cost + tree->cost;
        for (std::size_t i = 0; i < assign.size(); ++i) {
          base += price_of(assign[i], layer.vnfs[i]);
        }
        for (auto& [m, sp] : from_merger) {
          double inner = 0.0;
          bool ok = true;
          for (NodeId v : assign) {
            if (sp->dist[v] == graph::kInfCost) {
              ok = false;
              break;
            }
            inner += sp->dist[v];
          }
          if (!ok) continue;
          const double c = base + price_of(m, catalog.merger()) + inner;
          auto& slot = next[m];
          if (c < slot.cost) {
            slot.cost = c;
            slot.back = BackPointer{p, assign, tree->edges};
            ++result.expanded_sub_solutions;
          }
        }
      }
    }

    if (tr) {
      SolveEvent e;
      e.kind = TraceEventKind::DpLayer;
      e.i0 = static_cast<std::int64_t>(l);
      e.i1 = static_cast<std::int64_t>(cells_in);
      e.i2 = static_cast<std::int64_t>(next.size());
      tr(e);
    }
    if (next.empty()) {
      result.failure_reason =
          "no placement reachable at layer " + std::to_string(l + 1);
      record_counters();
      return result;
    }
    trail.push_back(next);
    dp = std::move(next);
  }

  // Final hop to the destination.
  const auto sp_t = oracle.tree(prob.flow.destination);
  NodeId best_end = graph::kInvalidNode;
  double best_raw = graph::kInfCost;
  for (const auto& [v, cell] : dp) {
    if (sp_t->dist[v] == graph::kInfCost) continue;
    const double c = cell.cost + sp_t->dist[v];
    if (c < best_raw) {
      best_raw = c;
      best_end = v;
    }
  }
  if (best_end == graph::kInvalidNode) {
    result.failure_reason = "destination unreachable from every end node";
    record_counters();
    return result;
  }

  // ---- Reconstruction ----------------------------------------------------
  DAGSFC_TRACE_SCOPE("exact/reconstruct");
  EmbeddingSolution sol;
  sol.placement.assign(index.num_slots(), graph::kInvalidNode);
  sol.inter_paths.resize(index.inter_paths().size());
  sol.inner_paths.resize(index.inner_paths().size());

  NodeId end = best_end;
  for (std::size_t l = omega; l-- > 0;) {
    const sfc::Layer& layer = dag.layer(l);
    const BackPointer& back = trail[l].at(end).back;
    const auto slots = index.layer_slots(l);
    for (std::size_t i = 0; i < back.assignment.size(); ++i) {
      sol.placement[slots[i]] = back.assignment[i];
    }
    const auto [ifirst, ilast] = index.inter_group_range(l);
    if (!layer.has_merger()) {
      DAGSFC_ASSERT(ilast - ifirst == 1);
      auto p = back.prev_end == back.assignment[0]
                   ? std::optional<graph::Path>(trivial_path(back.prev_end))
                   : oracle.min_cost_path(back.prev_end, back.assignment[0]);
      DAGSFC_CHECK(p.has_value());
      sol.inter_paths[ifirst] = std::move(*p);
    } else {
      sol.placement[slots.back()] = end;  // merger slot
      for (std::size_t i = ifirst; i < ilast; ++i) {
        sol.inter_paths[i] = path_in_tree(g, back.tree_edges, back.prev_end,
                                          back.assignment[i - ifirst]);
      }
      const auto [nfirst, nlast] = index.inner_layer_range(l);
      for (std::size_t i = nfirst; i < nlast; ++i) {
        const NodeId v = back.assignment[i - nfirst];
        auto p = v == end
                     ? std::optional<graph::Path>(trivial_path(v))
                     : oracle.min_cost_path(v, end);
        DAGSFC_CHECK(p.has_value());
        sol.inner_paths[i] = std::move(*p);
      }
    }
    end = back.prev_end;
  }
  {
    const auto [dfirst, dlast] = index.inter_group_range(omega);
    DAGSFC_ASSERT(dlast - dfirst == 1);
    auto p = best_end == prob.flow.destination
                 ? std::optional<graph::Path>(trivial_path(best_end))
                 : oracle.min_cost_path(best_end, prob.flow.destination);
    DAGSFC_CHECK(p.has_value());
    sol.inter_paths[dfirst] = std::move(*p);
  }

  Evaluator evaluator(index);
  DAGSFC_ASSERT(evaluator.validate(sol).empty());
  const ResourceUsage u = evaluator.usage(sol);
  record_counters();
  if (!evaluator.feasible(u, ledger)) {
    result.failure_reason =
        "optimal uncapacitated solution violates a capacity constraint; "
        "the exact solver requires non-binding capacities";
    return result;
  }
  result.cost = evaluator.cost(u);
  result.solution = std::move(sol);
  result.candidate_solutions = 1;
  return result;
}

}  // namespace dagsfc::core
