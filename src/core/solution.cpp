#include "core/solution.hpp"

#include <set>
#include <sstream>

namespace dagsfc::core {

NodeId Evaluator::resolve(const SlotRef& ref,
                          const EmbeddingSolution& sol) const {
  switch (ref.kind) {
    case SlotRef::Kind::Source:
      return index_->problem().flow.source;
    case SlotRef::Kind::Destination:
      return index_->problem().flow.destination;
    case SlotRef::Kind::Slot:
      DAGSFC_CHECK(ref.slot < sol.placement.size());
      return sol.placement[ref.slot];
  }
  DAGSFC_CHECK_MSG(false, "corrupt SlotRef");
  return graph::kInvalidNode;
}

namespace {

void check_path(const graph::Graph& g, const graph::Path& p, NodeId from,
                NodeId to, const std::string& what,
                std::vector<std::string>& errors) {
  if (p.nodes.empty()) {
    errors.push_back(what + ": meta-path not instantiated");
    return;
  }
  if (!g.path_valid(p)) {
    errors.push_back(what + ": real-path is not a walk of the topology");
    return;
  }
  if (p.source() != from || p.target() != to) {
    std::ostringstream os;
    os << what << ": endpoints (" << p.source() << " -> " << p.target()
       << ") do not match placement (" << from << " -> " << to << ")";
    errors.push_back(os.str());
  }
  std::set<graph::EdgeId> seen(p.edges.begin(), p.edges.end());
  if (seen.size() != p.edges.size()) {
    errors.push_back(what + ": real-path repeats a link");
  }
}

}  // namespace

std::vector<std::string> Evaluator::validate(
    const EmbeddingSolution& sol) const {
  std::vector<std::string> errors;
  const EmbeddingProblem& prob = index_->problem();
  const net::Network& net = prob.net();
  const graph::Graph& g = net.topology();

  if (sol.placement.size() != index_->num_slots()) {
    errors.push_back("placement vector has wrong size");
    return errors;
  }
  for (SlotId s = 0; s < index_->num_slots(); ++s) {
    const NodeId v = sol.placement[s];
    if (!g.has_node(v)) {
      errors.push_back("slot " + std::to_string(s) +
                       " placed on nonexistent node");
      continue;
    }
    if (!net.has_vnf(v, index_->slot_type(s))) {
      errors.push_back("slot " + std::to_string(s) + " placed on node " +
                       std::to_string(v) + " which does not host " +
                       net.catalog().name(index_->slot_type(s)));
    }
  }
  if (sol.inter_paths.size() != index_->inter_paths().size()) {
    errors.push_back("inter-layer path vector has wrong size");
    return errors;
  }
  if (sol.inner_paths.size() != index_->inner_paths().size()) {
    errors.push_back("inner-layer path vector has wrong size");
    return errors;
  }
  for (std::size_t i = 0; i < sol.inter_paths.size(); ++i) {
    const MetaPathDesc& d = index_->inter_paths()[i];
    check_path(g, sol.inter_paths[i], resolve(d.from, sol),
               resolve(d.to, sol), "inter-layer meta-path " + std::to_string(i),
               errors);
  }
  for (std::size_t i = 0; i < sol.inner_paths.size(); ++i) {
    const MetaPathDesc& d = index_->inner_paths()[i];
    check_path(g, sol.inner_paths[i], resolve(d.from, sol),
               resolve(d.to, sol), "inner-layer meta-path " + std::to_string(i),
               errors);
  }
  return errors;
}

ResourceUsage Evaluator::usage(const EmbeddingSolution& sol) const {
  const net::Network& net = index_->problem().net();
  ResourceUsage u;
  u.link_uses.assign(net.num_links(), 0);
  u.instance_uses.assign(net.num_instances(), 0);

  // Formula (7): every slot placed on (v, type) is one use of f_v(i).
  for (SlotId s = 0; s < index_->num_slots(); ++s) {
    const auto inst = net.find_instance(sol.placement[s], index_->slot_type(s));
    DAGSFC_CHECK_MSG(inst.has_value(), "invalid solution: run validate()");
    ++u.instance_uses[*inst];
  }

  // Formula (9): inter-layer groups are multicasts — each distinct link of a
  // group is charged once, however many of the group's paths carry it.
  for (std::size_t g = 0; g < index_->num_inter_groups(); ++g) {
    const auto [first, last] = index_->inter_group_range(g);
    std::set<graph::EdgeId> group_edges;
    for (std::size_t i = first; i < last; ++i) {
      group_edges.insert(sol.inter_paths[i].edges.begin(),
                         sol.inter_paths[i].edges.end());
    }
    for (graph::EdgeId e : group_edges) ++u.link_uses[e];
  }

  // Formula (10): inner-layer paths carry distinct packet versions — every
  // path charges each of its links.
  for (const graph::Path& p : sol.inner_paths) {
    for (graph::EdgeId e : p.edges) ++u.link_uses[e];
  }
  return u;
}

double Evaluator::cost(const EmbeddingSolution& sol) const {
  return cost(usage(sol));
}

double Evaluator::cost(const ResourceUsage& u) const {
  const auto [vnf, link] = cost_breakdown(u);
  return vnf + link;
}

std::pair<double, double> Evaluator::cost_breakdown(
    const ResourceUsage& u) const {
  const net::Network& net = index_->problem().net();
  const double z = index_->problem().flow.size;
  double vnf = 0.0;
  for (net::InstanceId id = 0; id < u.instance_uses.size(); ++id) {
    if (u.instance_uses[id] > 0) {
      vnf += static_cast<double>(u.instance_uses[id]) *
             net.instance(id).price * z;
    }
  }
  double link = 0.0;
  for (graph::EdgeId e = 0; e < u.link_uses.size(); ++e) {
    if (u.link_uses[e] > 0) {
      link += static_cast<double>(u.link_uses[e]) * net.link_price(e) * z;
    }
  }
  return {vnf, link};
}

std::vector<Evaluator::CostTerm> Evaluator::cost_terms(
    const EmbeddingSolution& sol) const {
  const net::Network& net = index_->problem().net();
  const double z = index_->problem().flow.size;
  const ResourceUsage u = usage(sol);

  // Raw per-link incidences before the multicast discount: every edge of
  // every real-path, inter and inner alike.
  std::vector<std::uint32_t> raw_link(net.num_links(), 0);
  for (const graph::Path& p : sol.inter_paths) {
    for (graph::EdgeId e : p.edges) ++raw_link[e];
  }
  for (const graph::Path& p : sol.inner_paths) {
    for (graph::EdgeId e : p.edges) ++raw_link[e];
  }

  std::vector<CostTerm> terms;
  for (net::InstanceId id = 0; id < u.instance_uses.size(); ++id) {
    if (u.instance_uses[id] == 0) continue;
    CostTerm t;
    t.vnf = true;
    t.id = id;
    t.uses = u.instance_uses[id];
    t.raw_uses = t.uses;
    t.price = net.instance(id).price;
    // Same expression as cost_breakdown so the term is the same double.
    t.value = static_cast<double>(u.instance_uses[id]) *
              net.instance(id).price * z;
    terms.push_back(t);
  }
  for (graph::EdgeId e = 0; e < u.link_uses.size(); ++e) {
    if (u.link_uses[e] == 0) continue;
    CostTerm t;
    t.vnf = false;
    t.id = e;
    t.uses = u.link_uses[e];
    t.raw_uses = raw_link[e];
    t.price = net.link_price(e);
    t.value = static_cast<double>(u.link_uses[e]) * net.link_price(e) * z;
    terms.push_back(t);
  }
  return terms;
}

bool Evaluator::feasible(const ResourceUsage& u,
                         const net::CapacityLedger& ledger) const {
  return ledger.can_apply(u.link_uses, u.instance_uses,
                          index_->problem().flow.rate);
}

void Evaluator::commit(const ResourceUsage& u,
                       net::CapacityLedger& ledger) const {
  ledger.apply(u.link_uses, u.instance_uses, index_->problem().flow.rate);
}

void Evaluator::release(const ResourceUsage& u,
                        net::CapacityLedger& ledger) const {
  ledger.unapply(u.link_uses, u.instance_uses, index_->problem().flow.rate);
}

}  // namespace dagsfc::core
