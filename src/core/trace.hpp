#pragma once
/// \file trace.hpp (core)
/// Structured per-solve tracing: typed SolveEvents emitted by the embedders
/// through an optional TraceSink, and EmbeddingTrace, the standard sink that
/// records them for inspection, aggregation, and Chrome-trace export.
///
/// The event stream is designed so that a solve is *auditable*:
///   * Decision events record the layer-by-layer search — candidate nodes
///     scored, ring-search extents, X_max caps and the uncapped retry, X_d
///     pruning, pool trims, and final candidate completions;
///   * Cost events reproduce objective (1) term by term: one VnfTerm per
///     rented instance (α_{v,i} of formula (7)) and one LinkTerm per charged
///     link, where the inter-layer multicast discount of formula (9) is
///     visible as raw path incidences vs. charged uses. Summing the terms in
///     event order is bitwise-equal to the Evaluator's reported cost;
///   * Cache events attribute shortest-path work (Dijkstra/Yen calls,
///     path-cache hits/misses) without ever influencing decisions — cached
///     and uncached runs differ only in this category.
///
/// Everything here is pay-for-use: call sites guard on a nullable sink, so a
/// null-trace solve executes the exact same instruction stream as before the
/// instrumentation (verified bit-for-bit by tests/test_trace.cpp).

#include <cstdint>
#include <string>
#include <vector>

namespace dagsfc::core {

/// Coarse grouping of SolveEvent kinds; Cache is the only category allowed
/// to differ between cache-on and cache-off runs of the same instance.
enum class TraceCategory : std::uint8_t { Meta, Decision, Cost, Cache };

enum class TraceEventKind : std::uint8_t {
  // --- Meta ---
  SolveBegin,      ///< s0 = algorithm name
  SolveEnd,        ///< i0 = ok (0/1), v0 = cost, s0 = failure reason
  // --- Decision: backtracking search (BBE/MBBE, Algorithm 1) ---
  LayerEnter,      ///< i0 = layer, i1 = parent pool size
  ForwardSearch,   ///< i0 = layer, i1 = start node, i2 = nodes searched,
                   ///< v0 = success (0/1), v1 = X_max-capped (0/1)
  BackwardSearch,  ///< i0 = layer, i1 = merger node, i2 = nodes searched,
                   ///< v0 = success (0/1)
  UncappedRetry,   ///< i0 = layer that exhausted under the X_max cap
  CandidateChild,  ///< i0 = layer, i1 = end node, i2 = parent index,
                   ///< v0 = cumulative cost
  ChildrenPruned,  ///< i0 = layer, i1 = generated, i2 = kept (X_d)
  PoolPruned,      ///< i0 = layer, i1 = before, i2 = after (max_pool)
  LayerDone,       ///< i0 = layer, i1 = surviving pool size
  FinalCandidate,  ///< i0 = end node, v0 = total cost, v1 = new-best (0/1)
  // --- Decision: assign-then-route baselines (RANV/MINV) ---
  SlotChoice,      ///< i0 = slot, i1 = node, i2 = candidate count, v0 = price
  MetaPathRouted,  ///< i0 = 0 inter / 1 inner, i1 = path index, i2 = hops,
                   ///< v0 = path cost
  // --- Decision: exact layer DP ---
  DpLayer,         ///< i0 = layer, i1 = cells considered, i2 = cells kept
  // --- Decision: layered product-graph search (LAYERED) ---
  LayeredLevel,    ///< i0 = level, i1 = states settled, i2 = relaxations
  LayeredGadget,   ///< i0 = layer, i1 = boundary node, i2 = labels relaxed,
                   ///< v0 = boundary cost, v1 = assignments enumerated
  // --- Cost: objective (1) reconstruction ---
  VnfTerm,         ///< i0 = instance, i1 = α uses, i2 = hosting node,
                   ///< v0 = term value (α·price·z), v1 = price
  LinkTerm,        ///< i0 = edge, i1 = charged uses (α_e), i2 = raw path
                   ///< incidences, v0 = term value (α_e·price·z), v1 = price
  // --- Cache: shortest-path work attribution ---
  PathQueries,     ///< i0 = dijkstra computations, i1 = yen computations
  CacheStats,      ///< i0 = hits, i1 = misses, i2 = evictions
};

[[nodiscard]] TraceCategory category(TraceEventKind kind) noexcept;

/// Human-readable event-kind name ("forward_search", "vnf_term", ...).
[[nodiscard]] const char* kind_name(TraceEventKind kind) noexcept;

/// One typed solve event. Field meaning depends on `kind` (see the enum);
/// unused fields stay at their defaults so events compare cleanly.
struct SolveEvent {
  TraceEventKind kind = TraceEventKind::SolveBegin;
  std::int64_t i0 = 0;
  std::int64_t i1 = 0;
  std::int64_t i2 = 0;
  double v0 = 0.0;
  double v1 = 0.0;
  std::string s0;

  [[nodiscard]] bool operator==(const SolveEvent&) const = default;
};

/// Receiver interface the embedders emit into. Implementations must tolerate
/// being driven from any single thread (one solve = one thread); they are
/// not required to be thread-safe across concurrent solves — use one sink
/// per solve.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const SolveEvent& e) = 0;
};

/// Null-safe emission helper for call sites:
///   Tracer trace(sink);
///   if (trace) { ... build event ...; trace(ev); }
class Tracer {
 public:
  explicit Tracer(TraceSink* sink) noexcept : sink_(sink) {}

  [[nodiscard]] explicit operator bool() const noexcept {
    return sink_ != nullptr;
  }

  void operator()(SolveEvent e) const {
    if (sink_ != nullptr) sink_->on_event(e);
  }

  [[nodiscard]] TraceSink* sink() const noexcept { return sink_; }

 private:
  TraceSink* sink_;
};

/// Additive roll-up of a trace, cheap enough to keep per trial and sum
/// across a Monte-Carlo run.
struct TraceCounts {
  std::uint64_t decision_events = 0;
  std::uint64_t forward_searches = 0;
  std::uint64_t backward_searches = 0;
  std::uint64_t uncapped_retries = 0;
  std::uint64_t candidate_children = 0;
  std::uint64_t children_dropped = 0;   ///< by X_d pruning
  std::uint64_t pool_dropped = 0;       ///< by max_pool trimming
  std::uint64_t final_candidates = 0;
  std::uint64_t vnf_terms = 0;
  std::uint64_t link_terms = 0;
  std::uint64_t multicast_shared_uses = 0;  ///< Σ (raw incidences − charged)

  TraceCounts& operator+=(const TraceCounts& o) noexcept;
  [[nodiscard]] bool operator==(const TraceCounts&) const = default;
};

/// The standard sink: records every event in emission order and offers the
/// derived views the tests and CLI need. One instance per solve.
class EmbeddingTrace final : public TraceSink {
 public:
  void on_event(const SolveEvent& e) override;

  [[nodiscard]] const std::vector<SolveEvent>& events() const noexcept {
    return events_;
  }

  [[nodiscard]] TraceCounts counts() const;

  /// Re-derives objective (1) by summing the Cost events in emission order.
  /// The embedder emits terms with the Evaluator's exact arithmetic and
  /// ordering, so for a successful solve this is bitwise-equal to
  /// SolveResult::cost. Returns 0.0 when no cost events were recorded.
  [[nodiscard]] double reconstructed_cost() const;

  /// Σ over LinkTerm events of (raw path incidences − charged uses): the
  /// total number of link charges saved by inter-layer multicast sharing
  /// (formula (9) vs. charging every path independently).
  [[nodiscard]] std::uint64_t multicast_sharing() const;

  /// Events of this trace rendered as a Chrome trace_event JSON document
  /// (logical timestamps = event index; tid/pid fixed at 0, so the output
  /// is byte-stable across runs and thread counts).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Compact multi-line human summary for the CLI.
  [[nodiscard]] std::string summary() const;

  void clear() { events_.clear(); }

 private:
  std::vector<SolveEvent> events_;
};

}  // namespace dagsfc::core
