#include "core/backtracking.hpp"

#include <algorithm>
#include <iterator>
#include <optional>
#include <set>

#include "core/path_oracle.hpp"
#include "graph/dijkstra.hpp"
#include "util/trace.hpp"

namespace dagsfc::core {

namespace {

constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

/// One node of the sub-solution tree (§4.4.2): the embedding of a single
/// DAG-SFC layer, linked to the previous layer's sub-solution it extends.
struct SubSolution {
  std::size_t parent = kNoParent;  ///< index into the previous layer's pool
  NodeId end_node = graph::kInvalidNode;
  double cumulative_cost = 0.0;  ///< exact cost of layers embedded so far
  double cumulative_delay = 0.0;  ///< critical-path delay so far (ms)
  std::vector<NodeId> layer_placement;   ///< aligned with layer_slots(l)
  std::vector<graph::Path> inter;        ///< per VNF slot of the layer
  std::vector<graph::Path> inner;        ///< per VNF slot (parallel layers)
};

/// Trivial single-node path used when a meta-path's endpoints coincide.
graph::Path trivial_path(NodeId v) {
  graph::Path p;
  p.nodes.push_back(v);
  return p;
}

/// Tracks which of a layer's required VNF types are already offered by the
/// searched node set (forward/backward coverage condition L_l ⊆ F^{·,l}).
class Coverage {
 public:
  Coverage(const net::CapacityLedger& ledger, std::vector<VnfTypeId> types,
           double rate)
      : ledger_(&ledger), types_(std::move(types)),
        covered_(types_.size(), 0), rate_(rate) {}

  void observe(NodeId v) {
    for (std::size_t i = 0; i < types_.size(); ++i) {
      if (!covered_[i] && ledger_->node_offers(v, types_[i], rate_)) {
        covered_[i] = 1;
        ++num_covered_;
      }
    }
  }

  [[nodiscard]] bool complete() const noexcept {
    return num_covered_ == types_.size();
  }

 private:
  const net::CapacityLedger* ledger_;
  std::vector<VnfTypeId> types_;
  std::vector<char> covered_;
  std::size_t num_covered_ = 0;
  double rate_;
};

/// Runs an expanding-ring search from \p start until \p coverage is
/// complete, the (optional) node budget is exhausted, or the filtered
/// component runs out. Returns the search tree; \p success reports whether
/// coverage was achieved.
SearchTree ring_search(const graph::Graph& g, NodeId start, Coverage coverage,
                       std::size_t node_budget,
                       const graph::NodeFilter& filter, bool& success,
                       graph::SearchWorkspace& ws) {
  DAGSFC_TRACE_SCOPE("backtracking/ring_search");
  graph::RingExpander expander(g, start, filter, &ws);
  coverage.observe(start);
  while (!coverage.complete()) {
    if (node_budget > 0 && expander.visited().size() >= node_budget) break;
    const auto& ring = expander.expand();
    if (ring.empty()) break;
    for (NodeId v : ring) {
      coverage.observe(v);
      if (coverage.complete()) break;
    }
  }
  success = coverage.complete();
  return SearchTree::from_expander(expander);
}

/// Cartesian-product enumerator over per-type candidate node lists, visited
/// lexicographically and capped.
class AssignmentEnumerator {
 public:
  explicit AssignmentEnumerator(std::vector<std::vector<NodeId>> choices)
      : choices_(std::move(choices)), cursor_(choices_.size(), 0) {
    for (const auto& c : choices_) {
      if (c.empty()) {
        done_ = true;
        return;
      }
    }
  }

  [[nodiscard]] bool done() const noexcept { return done_; }

  [[nodiscard]] std::vector<NodeId> current() const {
    std::vector<NodeId> out(choices_.size());
    for (std::size_t i = 0; i < choices_.size(); ++i) {
      out[i] = choices_[i][cursor_[i]];
    }
    return out;
  }

  void advance() {
    for (std::size_t i = choices_.size(); i-- > 0;) {
      if (++cursor_[i] < choices_[i].size()) return;
      cursor_[i] = 0;
    }
    done_ = true;
  }

 private:
  std::vector<std::vector<NodeId>> choices_;
  std::vector<std::size_t> cursor_;
  bool done_ = false;
};

struct LayerContext {
  const ModelIndex& index;
  const net::CapacityLedger& ledger;
  const net::Network& net;
  const graph::Graph& g;
  double rate;
  double z;
};

/// Exact cost contribution of one layer sub-solution: rented VNFs plus link
/// cost with the intra-group multicast discount of formula (9). Cost is
/// separable per layer (the discount never crosses layers), so cumulative
/// sums are exact.
double layer_cost(const LayerContext& ctx, const SubSolution& ss,
                  std::span<const SlotId> slots) {
  double vnf = 0.0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const auto inst =
        ctx.net.find_instance(ss.layer_placement[i],
                              ctx.index.slot_type(slots[i]));
    DAGSFC_ASSERT(inst.has_value());
    vnf += ctx.net.instance(*inst).price * ctx.z;
  }
  std::set<graph::EdgeId> group_edges;
  for (const graph::Path& p : ss.inter) {
    group_edges.insert(p.edges.begin(), p.edges.end());
  }
  double link = 0.0;
  for (graph::EdgeId e : group_edges) link += ctx.net.link_price(e) * ctx.z;
  for (const graph::Path& p : ss.inner) {
    for (graph::EdgeId e : p.edges) link += ctx.net.link_price(e) * ctx.z;
  }
  return vnf + link;
}

/// Critical-path delay contribution of one layer sub-solution: slowest
/// branch (inter hops + VNF processing + inner hops) plus the merge step.
/// Matches core/delay.hpp's end_to_end_delay accumulation exactly.
double layer_delay(const LayerContext& ctx, const SubSolution& ss,
                   std::span<const SlotId> slots, bool parallel,
                   const DelayModel& model) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ss.inter.size(); ++i) {
    double d = static_cast<double>(ss.inter[i].length()) * model.per_hop_ms;
    d += model.processing_ms(ctx.index.slot_type(slots[i]));
    if (parallel) {
      d += static_cast<double>(ss.inner[i].length()) * model.per_hop_ms;
    }
    worst = std::max(worst, d);
  }
  return worst + (parallel ? model.merger_ms : 0.0);
}

/// Path residual check: every link of the path must individually be able to
/// carry the flow rate (the full multi-use check happens on assembly).
bool path_links_ok(const net::CapacityLedger& ledger, const graph::Path& p,
                   double rate) {
  for (graph::EdgeId e : p.edges) {
    if (!ledger.link_can_carry(e, rate)) return false;
  }
  return true;
}

/// Odometer over index lists: enumerates the cartesian product of
/// {0..sizes[0]-1} × … lexicographically.
class Odometer {
 public:
  explicit Odometer(std::vector<std::size_t> sizes)
      : sizes_(std::move(sizes)), cursor_(sizes_.size(), 0) {
    for (std::size_t s : sizes_) {
      if (s == 0) done_ = true;
    }
  }
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const std::vector<std::size_t>& current() const noexcept {
    return cursor_;
  }
  void advance() {
    for (std::size_t i = sizes_.size(); i-- > 0;) {
      if (++cursor_[i] < sizes_[i]) return;
      cursor_[i] = 0;
    }
    done_ = true;
  }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> cursor_;
  bool done_ = false;
};

}  // namespace

SolveResult BacktrackingEngine::run(const ModelIndex& index,
                                    const net::CapacityLedger& ledger,
                                    TraceSink* trace,
                                    graph::SearchWorkspace* workspace) const {
  const Tracer tr(trace);
  const EmbeddingProblem& prob = index.problem();
  const net::Network& net = prob.net();
  const graph::Graph& g = net.topology();
  const sfc::DagSfc& dag = prob.dag();
  const net::VnfCatalog& catalog = net.catalog();
  const double rate = prob.flow.rate;
  const LayerContext ctx{index, ledger, net, g, rate, prob.flow.size};
  const std::size_t omega = dag.num_layers();

  SolveResult result;

  // All shortest-path questions go through the oracle, which consults the
  // ledger's epoch-keyed cache and tallies the observability counters. The
  // ring searches borrow its workspace too, so one buffer set serves the
  // whole solve.
  PathOracle oracle(g, ledger, rate, workspace);
  graph::SearchWorkspace& ws = oracle.workspace();

  // Layer 0 of the sub-solution tree: the source, at no cost (§4.4.2).
  std::vector<std::vector<SubSolution>> pools(omega + 1);
  {
    SubSolution root;
    root.end_node = prob.flow.source;
    pools[0].push_back(std::move(root));
  }

  for (std::size_t l = 0; l < omega; ++l) {
    DAGSFC_TRACE_SCOPE("backtracking/layer");
    const sfc::Layer& layer = dag.layer(l);
    const auto slots = index.layer_slots(l);
    std::vector<SubSolution>& out = pools[l + 1];

    if (tr) {
      SolveEvent e;
      e.kind = TraceEventKind::LayerEnter;
      e.i0 = static_cast<std::int64_t>(l);
      e.i1 = static_cast<std::int64_t>(pools[l].size());
      tr(e);
    }

    // MBBE strategy (3): the sub-solution tree is an X_d-tree — only the
    // cheapest X_d children of each parent are inserted.
    auto prune_and_merge = [this, &tr, l](std::vector<SubSolution>& kids,
                                         std::vector<SubSolution>& dest) {
      const std::size_t generated = kids.size();
      if (opts_.x_d > 0 && kids.size() > opts_.x_d) {
        std::partial_sort(kids.begin(), kids.begin() + opts_.x_d, kids.end(),
                          [](const SubSolution& a, const SubSolution& b) {
                            return a.cumulative_cost < b.cumulative_cost;
                          });
        kids.resize(opts_.x_d);
      }
      if (tr && generated > 0) {
        SolveEvent e;
        e.kind = TraceEventKind::ChildrenPruned;
        e.i0 = static_cast<std::int64_t>(l);
        e.i1 = static_cast<std::int64_t>(generated);
        e.i2 = static_cast<std::int64_t>(kids.size());
        tr(e);
      }
      dest.insert(dest.end(), std::make_move_iterator(kids.begin()),
                  std::make_move_iterator(kids.end()));
    };

    // Pass 0 honors the X_max cap (MBBE strategy (1)); when a layer yields
    // nothing under the cap — e.g. very sparse deployments where the
    // required hosts sit beyond X_max nodes — pass 1 retries uncapped, so
    // the cap accelerates the common case without costing completeness
    // (the paper observes that "MBBE always results in a solution").
    for (int pass = 0; pass < 2; ++pass) {
    const std::size_t x_max_pass = pass == 0 ? opts_.x_max : 0;
    if (tr && pass == 1) {
      SolveEvent e;
      e.kind = TraceEventKind::UncappedRetry;
      e.i0 = static_cast<std::int64_t>(l);
      tr(e);
    }

    for (std::size_t parent = 0; parent < pools[l].size(); ++parent) {
      const SubSolution& ss = pools[l][parent];
      const NodeId start = ss.end_node;

      // ---- Step 1: forward search --------------------------------------
      std::vector<VnfTypeId> required(layer.vnfs);
      if (layer.has_merger()) required.push_back(catalog.merger());
      bool fwd_ok = false;
      const SearchTree fst =
          ring_search(g, start, Coverage(ledger, required, rate), x_max_pass,
                      {}, fwd_ok, ws);
      oracle.note_bfs();
      if (tr) {
        SolveEvent e;
        e.kind = TraceEventKind::ForwardSearch;
        e.i0 = static_cast<std::int64_t>(l);
        e.i1 = static_cast<std::int64_t>(start);
        e.i2 = static_cast<std::int64_t>(fst.network_nodes().size());
        e.v0 = fwd_ok ? 1.0 : 0.0;
        e.v1 = x_max_pass > 0 ? 1.0 : 0.0;
        tr(e);
      }
      if (!fwd_ok) continue;

      // Min-cost tree from the start node, shared by MBBE's inter-layer
      // instantiation across all of this parent's candidates.
      std::shared_ptr<const graph::ShortestPathTree> sp_from_start;
      if (opts_.min_cost_path_instantiation) {
        sp_from_start = oracle.tree(start);
      }

      // Alternative real-paths in tree mode stay inside the forward-search
      // node set: the paper's second/third-step candidates re-traverse the
      // trees, not the whole graph.
      const graph::EdgeFilter fst_usable = [&](graph::EdgeId e) {
        const graph::Edge& ed = g.edge(e);
        return ledger.link_can_carry(e, rate) && fst.contains(ed.u) &&
               fst.contains(ed.v);
      };

      /// Candidate real-paths for the inter-layer meta-path to \p v — the
      /// real-path set P^{start}_v restricted per mode, capacity-screened.
      auto inter_paths_to = [&](NodeId v) -> std::vector<graph::Path> {
        std::vector<graph::Path> paths;
        if (v == start) {
          paths.push_back(trivial_path(start));
        } else if (opts_.min_cost_path_instantiation) {
          if (opts_.paths_per_meta_path <= 1) {
            if (auto p = sp_from_start->path_to(v)) {
              paths.push_back(std::move(*p));
            }
          } else {
            paths = oracle.k_shortest(start, v, opts_.paths_per_meta_path);
          }
        } else {
          paths.push_back(fst.path_from_root(g, v));
          if (opts_.paths_per_meta_path > 1) {
            for (auto& alt : oracle.k_shortest_filtered(
                     start, v, opts_.paths_per_meta_path, fst_usable)) {
              if (alt.nodes != paths.front().nodes) {
                paths.push_back(std::move(alt));
              }
            }
            if (paths.size() > opts_.paths_per_meta_path) {
              paths.resize(opts_.paths_per_meta_path);
            }
          }
        }
        std::erase_if(paths, [&](const graph::Path& p) {
          return !path_links_ok(ledger, p, rate);
        });
        return paths;
      };

      std::vector<SubSolution> children;  // all candidates of this parent

      if (!layer.has_merger()) {
        // Single-VNF layer: each hosting node in the forward set is a
        // candidate sub-solution (one per alternative real-path); no
        // merger, no inner-layer meta-paths.
        const VnfTypeId t = layer.vnfs[0];
        for (NodeId v : fst.network_nodes()) {
          if (!ledger.node_offers(v, t, rate)) continue;
          for (graph::Path& path : inter_paths_to(v)) {
            SubSolution child;
            child.parent = parent;
            child.end_node = v;
            child.layer_placement = {v};
            child.inter.push_back(std::move(path));
            child.cumulative_cost =
                ss.cumulative_cost + layer_cost(ctx, child, slots);
            child.cumulative_delay =
                ss.cumulative_delay +
                layer_delay(ctx, child, slots, false, opts_.delay_model);
            if (opts_.delay_budget_ms &&
                child.cumulative_delay > *opts_.delay_budget_ms) {
              continue;
            }
            if (tr) {
              SolveEvent e;
              e.kind = TraceEventKind::CandidateChild;
              e.i0 = static_cast<std::int64_t>(l);
              e.i1 = static_cast<std::int64_t>(child.end_node);
              e.i2 = static_cast<std::int64_t>(parent);
              e.v0 = child.cumulative_cost;
              tr(e);
            }
            children.push_back(std::move(child));
            ++result.expanded_sub_solutions;
          }
        }
        prune_and_merge(children, out);
        continue;
      }

      // ---- Steps 2–3: backward search per merger + candidate generation
      std::vector<NodeId> merger_nodes;
      for (NodeId v : fst.network_nodes()) {
        if (ledger.node_offers(v, catalog.merger(), rate)) {
          merger_nodes.push_back(v);
        }
      }
      std::sort(merger_nodes.begin(), merger_nodes.end());

      for (NodeId m : merger_nodes) {
        bool bwd_ok = false;
        const SearchTree bst = ring_search(
            g, m, Coverage(ledger, layer.vnfs, rate), 0,
            [&](NodeId v) { return fst.contains(v); }, bwd_ok, ws);
        oracle.note_bfs();
        if (tr) {
          SolveEvent e;
          e.kind = TraceEventKind::BackwardSearch;
          e.i0 = static_cast<std::int64_t>(l);
          e.i1 = static_cast<std::int64_t>(m);
          e.i2 = static_cast<std::int64_t>(bst.network_nodes().size());
          e.v0 = bwd_ok ? 1.0 : 0.0;
          tr(e);
        }
        if (!bwd_ok) continue;

        std::shared_ptr<const graph::ShortestPathTree> sp_from_merger;
        if (opts_.min_cost_path_instantiation) {
          sp_from_merger = oracle.tree(m);
        }
        const graph::EdgeFilter bst_usable = [&](graph::EdgeId e) {
          const graph::Edge& ed = g.edge(e);
          return ledger.link_can_carry(e, rate) && bst.contains(ed.u) &&
                 bst.contains(ed.v);
        };
        /// Candidate real-paths v → merger (the inner-layer P^v_m).
        auto inner_paths_from = [&](NodeId v) -> std::vector<graph::Path> {
          std::vector<graph::Path> paths;
          if (v == m) {
            paths.push_back(trivial_path(m));
          } else if (opts_.min_cost_path_instantiation) {
            if (opts_.paths_per_meta_path <= 1) {
              if (auto p = sp_from_merger->path_to(v)) {
                std::reverse(p->nodes.begin(), p->nodes.end());
                std::reverse(p->edges.begin(), p->edges.end());
                paths.push_back(std::move(*p));
              }
            } else {
              paths = oracle.k_shortest(v, m, opts_.paths_per_meta_path);
            }
          } else {
            paths.push_back(bst.path_to_root(g, v));
            if (opts_.paths_per_meta_path > 1) {
              for (auto& alt : oracle.k_shortest_filtered(
                       v, m, opts_.paths_per_meta_path, bst_usable)) {
                if (alt.nodes != paths.front().nodes) {
                  paths.push_back(std::move(alt));
                }
              }
              if (paths.size() > opts_.paths_per_meta_path) {
                paths.resize(opts_.paths_per_meta_path);
              }
            }
          }
          std::erase_if(paths, [&](const graph::Path& p) {
            return !path_links_ok(ledger, p, rate);
          });
          return paths;
        };

        // First-step candidates (§4.4.1 i): allocations of the layer's
        // parallel VNFs to backward-set nodes.
        std::vector<std::vector<NodeId>> choices(layer.vnfs.size());
        for (std::size_t i = 0; i < layer.vnfs.size(); ++i) {
          for (NodeId v : bst.network_nodes()) {
            if (ledger.node_offers(v, layer.vnfs[i], rate)) {
              choices[i].push_back(v);
            }
          }
          std::sort(choices[i].begin(), choices[i].end());
        }

        std::size_t enumerated = 0;
        for (AssignmentEnumerator en(std::move(choices));
             !en.done() && enumerated < opts_.max_assignments_per_pair;
             en.advance(), ++enumerated) {
          const std::vector<NodeId> assign = en.current();

          // Candidate real-paths per meta-path of this allocation: the
          // second/third-step candidates of §4.4.1, capped by
          // max_path_combos.
          const std::size_t width = assign.size();
          std::vector<std::vector<graph::Path>> inter_opts(width);
          std::vector<std::vector<graph::Path>> inner_opts(width);
          bool ok = true;
          std::vector<std::size_t> sizes;
          sizes.reserve(2 * width);
          for (std::size_t i = 0; i < width && ok; ++i) {
            inter_opts[i] = inter_paths_to(assign[i]);
            inner_opts[i] = inner_paths_from(assign[i]);
            ok = !inter_opts[i].empty() && !inner_opts[i].empty();
            if (ok) {
              sizes.push_back(inter_opts[i].size());
              sizes.push_back(inner_opts[i].size());
            }
          }
          if (!ok) continue;  // step iv: drop infeasible candidates

          std::size_t combos = 0;
          for (Odometer od(sizes); !od.done() && combos < opts_.max_path_combos;
               od.advance(), ++combos) {
            SubSolution child;
            child.parent = parent;
            child.end_node = m;
            child.layer_placement = assign;
            child.layer_placement.push_back(m);  // merger slot is last
            const auto& pick = od.current();
            for (std::size_t i = 0; i < width; ++i) {
              child.inter.push_back(inter_opts[i][pick[2 * i]]);
              child.inner.push_back(inner_opts[i][pick[2 * i + 1]]);
            }
            child.cumulative_cost =
                ss.cumulative_cost + layer_cost(ctx, child, slots);
            child.cumulative_delay =
                ss.cumulative_delay +
                layer_delay(ctx, child, slots, true, opts_.delay_model);
            if (opts_.delay_budget_ms &&
                child.cumulative_delay > *opts_.delay_budget_ms) {
              continue;
            }
            if (tr) {
              SolveEvent e;
              e.kind = TraceEventKind::CandidateChild;
              e.i0 = static_cast<std::int64_t>(l);
              e.i1 = static_cast<std::int64_t>(child.end_node);
              e.i2 = static_cast<std::int64_t>(parent);
              e.v0 = child.cumulative_cost;
              tr(e);
            }
            children.push_back(std::move(child));
            ++result.expanded_sub_solutions;
          }
        }
      }

      prune_and_merge(children, out);
    }

    if (!out.empty() || opts_.x_max == 0) break;
    }  // retry pass

    if (out.empty()) {
      result.failure_reason =
          "no feasible sub-solution at layer " + std::to_string(l + 1);
      result.path_queries = oracle.counters();
      return result;
    }
    // Memory-overflow guard the paper lacks: keep the cheapest sub-solutions
    // when the pool exceeds the cap.
    if (opts_.max_pool > 0 && out.size() > opts_.max_pool) {
      if (tr) {
        SolveEvent e;
        e.kind = TraceEventKind::PoolPruned;
        e.i0 = static_cast<std::int64_t>(l);
        e.i1 = static_cast<std::int64_t>(out.size());
        e.i2 = static_cast<std::int64_t>(opts_.max_pool);
        tr(e);
      }
      std::nth_element(out.begin(), out.begin() + opts_.max_pool, out.end(),
                       [](const SubSolution& a, const SubSolution& b) {
                         return a.cumulative_cost < b.cumulative_cost;
                       });
      out.resize(opts_.max_pool);
    }
    if (tr) {
      SolveEvent e;
      e.kind = TraceEventKind::LayerDone;
      e.i0 = static_cast<std::int64_t>(l);
      e.i1 = static_cast<std::int64_t>(out.size());
      tr(e);
    }
  }

  // ---- Completion: ω-th end node → destination by min-cost path, pick the
  // cheapest complete feasible candidate (Algorithm 1 lines 9–11).
  DAGSFC_TRACE_SCOPE("backtracking/complete");
  Evaluator evaluator(index);
  double best_cost = graph::kInfCost;
  std::optional<EmbeddingSolution> best;

  for (const SubSolution& leaf : pools[omega]) {
    auto final_hop =
        leaf.end_node == prob.flow.destination
            ? std::optional<graph::Path>(trivial_path(leaf.end_node))
            : oracle.min_cost_path(leaf.end_node, prob.flow.destination);
    if (!final_hop) continue;
    ++result.candidate_solutions;

    if (opts_.delay_budget_ms) {
      const double total_delay =
          leaf.cumulative_delay +
          static_cast<double>(final_hop->length()) *
              opts_.delay_model.per_hop_ms;
      if (total_delay > *opts_.delay_budget_ms) continue;
    }

    // Quick lower-bound cut before full assembly.
    if (leaf.cumulative_cost + final_hop->cost * prob.flow.size >= best_cost) {
      continue;
    }

    // Assemble the complete solution by walking the parent chain.
    EmbeddingSolution sol;
    sol.placement.assign(index.num_slots(), graph::kInvalidNode);
    sol.inter_paths.resize(index.inter_paths().size());
    sol.inner_paths.resize(index.inner_paths().size());

    const SubSolution* cur = &leaf;
    for (std::size_t l = omega; l-- > 0;) {
      const auto slots = index.layer_slots(l);
      DAGSFC_ASSERT(cur->layer_placement.size() == slots.size());
      for (std::size_t i = 0; i < slots.size(); ++i) {
        sol.placement[slots[i]] = cur->layer_placement[i];
      }
      const auto [ifirst, ilast] = index.inter_group_range(l);
      DAGSFC_ASSERT(ilast - ifirst == cur->inter.size());
      for (std::size_t i = ifirst; i < ilast; ++i) {
        sol.inter_paths[i] = cur->inter[i - ifirst];
      }
      const auto [nfirst, nlast] = index.inner_layer_range(l);
      DAGSFC_ASSERT(nlast - nfirst == cur->inner.size());
      for (std::size_t i = nfirst; i < nlast; ++i) {
        sol.inner_paths[i] = cur->inner[i - nfirst];
      }
      cur = &pools[l][cur->parent];
    }
    const auto [dfirst, dlast] = index.inter_group_range(omega);
    DAGSFC_ASSERT(dlast - dfirst == 1);
    sol.inter_paths[dfirst] = *final_hop;

    DAGSFC_ASSERT(evaluator.validate(sol).empty());
    const ResourceUsage u = evaluator.usage(sol);
    if (!evaluator.feasible(u, ledger)) continue;
    const double c = evaluator.cost(u);
    if (tr) {
      SolveEvent e;
      e.kind = TraceEventKind::FinalCandidate;
      e.i0 = static_cast<std::int64_t>(leaf.end_node);
      e.v0 = c;
      e.v1 = c < best_cost ? 1.0 : 0.0;
      tr(e);
    }
    if (c < best_cost) {
      best_cost = c;
      best = std::move(sol);
    }
  }

  result.path_queries = oracle.counters();
  if (!best) {
    result.failure_reason = "no feasible complete solution";
    return result;
  }
  result.solution = std::move(best);
  result.cost = best_cost;
  return result;
}

SolveResult BbeEmbedder::do_solve(const ModelIndex& index,
                                  const net::CapacityLedger& ledger,
                                  Rng& /*rng*/, TraceSink* trace,
                                  graph::SearchWorkspace* workspace) const {
  return engine_.run(index, ledger, trace, workspace);
}

namespace {
BacktrackingOptions mbbe_engine_options(const MbbeOptions& opts) {
  BacktrackingOptions o;
  o.min_cost_path_instantiation = true;
  o.x_max = opts.x_max;
  o.x_d = opts.x_d;
  o.delay_budget_ms = opts.delay_budget_ms;
  o.delay_model = opts.delay_model;
  return o;
}
}  // namespace

MbbeEmbedder::MbbeEmbedder(const MbbeOptions& opts)
    : engine_(mbbe_engine_options(opts)) {
  DAGSFC_CHECK_MSG(opts.x_max >= 1, "X_max must be at least 1");
  DAGSFC_CHECK_MSG(opts.x_d >= 1, "X_d must be at least 1");
}

SolveResult MbbeEmbedder::do_solve(const ModelIndex& index,
                                   const net::CapacityLedger& ledger,
                                   Rng& /*rng*/, TraceSink* trace,
                                   graph::SearchWorkspace* workspace) const {
  return engine_.run(index, ledger, trace, workspace);
}

}  // namespace dagsfc::core
