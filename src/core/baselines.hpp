#pragma once
/// \file baselines.hpp
/// The paper's two benchmark algorithms (§5.1).
///
/// RANV assigns every VNF required by the DAG-SFC (mergers included) to a
/// uniformly random node hosting an instance with enough remaining
/// processing capability, then implements each meta-path with the minimum
/// cost path (Dijkstra). MINV does the same but always picks the node whose
/// instance has the cheapest rental price. Neither is multicast-aware or
/// proximity-aware — that is exactly the gap BBE/MBBE close — but both are
/// scored by the same Evaluator (including the inter-layer multicast
/// discount), so the comparison is conservative.

#include "core/embedder.hpp"

namespace dagsfc::core {

class RanvEmbedder final : public Embedder {
 public:
  [[nodiscard]] std::string name() const override { return "RANV"; }

 protected:
  [[nodiscard]] SolveResult do_solve(const ModelIndex& index,
                                     const net::CapacityLedger& ledger,
                                     Rng& rng, TraceSink* trace,
                                     graph::SearchWorkspace* workspace)
      const override;
};

class MinvEmbedder final : public Embedder {
 public:
  [[nodiscard]] std::string name() const override { return "MINV"; }

 protected:
  [[nodiscard]] SolveResult do_solve(const ModelIndex& index,
                                     const net::CapacityLedger& ledger,
                                     Rng& rng, TraceSink* trace,
                                     graph::SearchWorkspace* workspace)
      const override;
};

}  // namespace dagsfc::core
