#pragma once
/// \file model.hpp
/// The optimal DAG-SFC embedding problem instance and its index structures.
///
/// An EmbeddingProblem bundles the target network, the DAG-SFC, and the
/// traffic flow (source s, destination t, rate R, size z) — everything
/// Definition 1 of the paper quantifies over.
///
/// ModelIndex flattens the DAG-SFC into *slots* and *meta-paths* with dense
/// indices, which every solver and the evaluator share:
///   * one slot per VNF occurrence per layer, plus one merger slot for each
///     parallel layer (the merger is rentable like any VNF);
///   * one inter-layer meta-path per (layer, target VNF slot) — the paper's
///     set P1 — including the final hop to the destination (the stretched
///     SFC's dummy layer L_{ω+1});
///   * one inner-layer meta-path per (parallel layer, VNF slot) — set P2.

#include <cstdint>
#include <span>
#include <vector>

#include "net/network.hpp"
#include "sfc/dag_sfc.hpp"

namespace dagsfc::core {

using graph::NodeId;
using net::VnfTypeId;

/// The traffic flow of §3.2: delivered from s to t with rate R; every unit
/// of traffic costs price·z, so z scales the whole objective.
struct Flow {
  NodeId source = graph::kInvalidNode;
  NodeId destination = graph::kInvalidNode;
  double rate = 1.0;  ///< R, consumed from link/VNF capacities per use
  double size = 1.0;  ///< z, multiplies all prices in the objective
};

struct EmbeddingProblem {
  const net::Network* network = nullptr;
  const sfc::DagSfc* sfc = nullptr;
  Flow flow;

  [[nodiscard]] const net::Network& net() const {
    DAGSFC_CHECK(network != nullptr);
    return *network;
  }
  [[nodiscard]] const sfc::DagSfc& dag() const {
    DAGSFC_CHECK(sfc != nullptr);
    return *sfc;
  }
  /// Structural sanity: endpoints exist, rate/size positive, SFC valid.
  void validate() const;
};

using SlotId = std::uint32_t;
inline constexpr SlotId kInvalidSlot = static_cast<SlotId>(-1);

/// An endpoint of a meta-path: the flow source, the flow destination, or a
/// placeable slot.
struct SlotRef {
  enum class Kind : std::uint8_t { Source, Destination, Slot };
  Kind kind = Kind::Source;
  SlotId slot = kInvalidSlot;

  [[nodiscard]] static SlotRef source() { return {Kind::Source, kInvalidSlot}; }
  [[nodiscard]] static SlotRef destination() {
    return {Kind::Destination, kInvalidSlot};
  }
  [[nodiscard]] static SlotRef of(SlotId s) { return {Kind::Slot, s}; }

  friend bool operator==(const SlotRef&, const SlotRef&) = default;
};

/// One logical DAG edge. `layer` is the inter-layer *group* index for P1
/// paths (0..ω, where group ω is the final hop to the destination) and the
/// 0-based SFC layer for P2 paths; the multicast discount of formula (9)
/// applies per P1 group.
struct MetaPathDesc {
  enum class Group : std::uint8_t { InterLayer, InnerLayer };
  Group group = Group::InterLayer;
  std::uint32_t layer = 0;
  SlotRef from;
  SlotRef to;
};

class ModelIndex {
 public:
  explicit ModelIndex(const EmbeddingProblem& problem);

  [[nodiscard]] const EmbeddingProblem& problem() const noexcept {
    return *problem_;
  }

  // --- slots ---------------------------------------------------------------

  [[nodiscard]] std::size_t num_slots() const noexcept {
    return slot_types_.size();
  }
  [[nodiscard]] VnfTypeId slot_type(SlotId s) const {
    DAGSFC_CHECK(s < slot_types_.size());
    return slot_types_[s];
  }
  [[nodiscard]] std::uint32_t slot_layer(SlotId s) const {
    DAGSFC_CHECK(s < slot_layers_.size());
    return slot_layers_[s];
  }
  [[nodiscard]] bool is_merger_slot(SlotId s) const {
    DAGSFC_CHECK(s < slot_is_merger_.size());
    return slot_is_merger_[s] != 0;
  }
  /// Slot of the γ-th VNF of 0-based layer \p l.
  [[nodiscard]] SlotId vnf_slot(std::size_t l, std::size_t gamma) const;
  /// Merger slot of 0-based parallel layer \p l.
  [[nodiscard]] SlotId merger_slot(std::size_t l) const;
  /// The slot terminating layer \p l: its merger if parallel, else its VNF.
  [[nodiscard]] SlotId layer_end_slot(std::size_t l) const;
  /// All slots of layer \p l (VNFs first, merger last when present).
  [[nodiscard]] std::span<const SlotId> layer_slots(std::size_t l) const;

  // --- meta-paths ----------------------------------------------------------

  [[nodiscard]] const std::vector<MetaPathDesc>& inter_paths() const noexcept {
    return inter_paths_;
  }
  [[nodiscard]] const std::vector<MetaPathDesc>& inner_paths() const noexcept {
    return inner_paths_;
  }
  /// [first, last) indices into inter_paths() of inter-layer group \p g,
  /// g ∈ [0, ω] (group ω is the destination hop).
  [[nodiscard]] std::pair<std::size_t, std::size_t> inter_group_range(
      std::size_t g) const;
  /// [first, last) indices into inner_paths() for 0-based layer \p l.
  [[nodiscard]] std::pair<std::size_t, std::size_t> inner_layer_range(
      std::size_t l) const;
  /// Number of inter-layer groups (= ω + 1).
  [[nodiscard]] std::size_t num_inter_groups() const noexcept {
    return inter_offsets_.size() - 1;
  }

 private:
  const EmbeddingProblem* problem_;
  std::vector<VnfTypeId> slot_types_;
  std::vector<std::uint32_t> slot_layers_;
  std::vector<char> slot_is_merger_;
  std::vector<std::vector<SlotId>> layer_slot_ids_;
  std::vector<MetaPathDesc> inter_paths_;
  std::vector<MetaPathDesc> inner_paths_;
  std::vector<std::size_t> inter_offsets_;  // per group
  std::vector<std::size_t> inner_offsets_;  // per layer
};

}  // namespace dagsfc::core
