#pragma once
/// \file embedder.hpp
/// Common interface of all embedding algorithms.
///
/// Algorithms receive the problem plus the residual network state (the
/// "real-time network graph" of Algorithm 1) and return a SolveResult. They
/// never mutate the ledger — admission (Evaluator::commit) is the caller's
/// decision, which keeps multi-flow scenarios explicit.

#include <memory>
#include <optional>
#include <string>

#include "core/solution.hpp"
#include "core/trace.hpp"
#include "graph/path_cache.hpp"
#include "util/rng.hpp"

namespace dagsfc::core {

struct SolveResult {
  std::optional<EmbeddingSolution> solution;
  double cost = 0.0;  ///< objective (1); meaningful iff solution is set
  std::string failure_reason;
  /// Search effort diagnostics for the complexity benches.
  std::size_t expanded_sub_solutions = 0;
  std::size_t candidate_solutions = 0;
  /// Shortest-path query counters (Dijkstra/Yen computations and path-cache
  /// hits/misses/evictions) accumulated by this solve's PathOracle.
  graph::PathQueryCounters path_queries;

  [[nodiscard]] bool ok() const noexcept { return solution.has_value(); }
};

class Embedder {
 public:
  virtual ~Embedder() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Solves against the residual state in \p ledger. \p rng feeds the
  /// randomized algorithms; deterministic ones ignore it.
  ///
  /// When \p trace is non-null it receives the structured event stream of
  /// this solve: SolveBegin/SolveEnd meta events, the algorithm's Decision
  /// events, and — on success — the Cost events reproducing objective (1)
  /// term by term plus Cache events attributing shortest-path work (see
  /// core/trace.hpp). Tracing never changes the solve: a null-trace call
  /// returns a bit-identical SolveResult.
  ///
  /// \p workspace, when non-null, lends this solve's PathOracle a
  /// caller-owned graph::SearchWorkspace, so repeated solves on the same
  /// worker thread reuse one set of search buffers (allocation-free warm
  /// Dijkstras). Null means the oracle uses its own; results are identical
  /// either way. The workspace must not be shared by concurrent solves.
  [[nodiscard]] SolveResult solve(const ModelIndex& index,
                                  const net::CapacityLedger& ledger, Rng& rng,
                                  TraceSink* trace = nullptr,
                                  graph::SearchWorkspace* workspace =
                                      nullptr) const;

  /// Convenience: solve against the network's nominal capacities.
  [[nodiscard]] SolveResult solve_fresh(
      const ModelIndex& index, Rng& rng, TraceSink* trace = nullptr,
      graph::SearchWorkspace* workspace = nullptr) const {
    net::CapacityLedger ledger(index.problem().net());
    return solve(index, ledger, rng, trace, workspace);
  }

 protected:
  /// Algorithm body. Implementations emit their Decision events into
  /// \p trace (null-guarded via Tracer); the Meta/Cost/Cache envelope is
  /// added by solve(). \p workspace is the (possibly null) caller loan to
  /// hand to the PathOracle.
  [[nodiscard]] virtual SolveResult do_solve(const ModelIndex& index,
                                             const net::CapacityLedger& ledger,
                                             Rng& rng, TraceSink* trace,
                                             graph::SearchWorkspace* workspace)
      const = 0;
};

}  // namespace dagsfc::core
