#pragma once
/// \file exact.hpp
/// Exact reference solver for the optimal DAG-SFC embedding problem,
/// valid on instances whose capacities are non-binding.
///
/// Observation: objective (1) is separable per layer. VNF rental is a sum
/// over placed slots; link cost sums, per inter-layer group, the distinct
/// links of that group (multicast) and, per inner-layer path, the links of
/// the path — and the multicast discount never crosses layers. So a dynamic
/// program over "end node of layer l" is exact:
///
///   dp[l][v] = cheapest embedding of layers 1..l ending at node v,
///
/// where a transition prices a layer as Σ VNF rents + minimum Steiner tree
/// (terminals: previous end node ∪ assigned VNF nodes — the optimal
/// multicast) + Σ shortest-path costs VNF→merger. VNF allocations inside a
/// layer are enumerated exhaustively, which bounds this solver to small
/// instances; run() refuses (with a clear reason) when the estimated work
/// exceeds the budget.
///
/// Capacities: the DP ignores constraints (2)–(3) while optimizing (they
/// couple layers and would break separability); the reconstructed solution
/// is checked afterwards and the result is flagged infeasible if any
/// capacity binds. Tests use this solver as the optimality oracle for
/// BBE/MBBE on generously provisioned instances, where the check always
/// passes and the DP value is the true optimum.

#include "core/embedder.hpp"

namespace dagsfc::core {

struct ExactOptions {
  /// Upper bound on (transitions × Steiner invocations) before refusing.
  std::size_t max_work = 5'000'000;
};

class ExactEmbedder final : public Embedder {
 public:
  explicit ExactEmbedder(const ExactOptions& opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "EXACT"; }

 protected:
  [[nodiscard]] SolveResult do_solve(const ModelIndex& index,
                                     const net::CapacityLedger& ledger,
                                     Rng& rng, TraceSink* trace,
                                     graph::SearchWorkspace* workspace)
      const override;

 private:
  ExactOptions opts_;
};

}  // namespace dagsfc::core
