#include "core/delay.hpp"

#include <algorithm>

namespace dagsfc::core {

namespace {

/// Accumulates layer delays with a caller-chosen branch combiner: max for
/// the parallel (critical-path) semantics, sum for serialized execution.
template <typename Combine>
double accumulate_delay(const Evaluator& evaluator,
                        const EmbeddingSolution& sol, const DelayModel& model,
                        Combine combine) {
  const ModelIndex& index = evaluator.index();
  const EmbeddingProblem& prob = index.problem();
  const std::size_t omega = prob.dag().num_layers();
  double total = 0.0;

  for (std::size_t l = 0; l < omega; ++l) {
    const auto [ifirst, ilast] = index.inter_group_range(l);
    const auto [nfirst, nlast] = index.inner_layer_range(l);
    const bool parallel = prob.dag().layer(l).has_merger();
    double layer = 0.0;
    for (std::size_t i = ifirst; i < ilast; ++i) {
      const std::size_t branch = i - ifirst;
      double d = static_cast<double>(sol.inter_paths[i].length()) *
                 model.per_hop_ms;
      const SlotId slot = index.vnf_slot(l, branch);
      d += model.processing_ms(index.slot_type(slot));
      if (parallel) {
        DAGSFC_ASSERT(nfirst + branch < nlast);
        d += static_cast<double>(sol.inner_paths[nfirst + branch].length()) *
             model.per_hop_ms;
      }
      layer = combine(layer, d);
    }
    total += layer;
    if (parallel) total += model.merger_ms;
  }
  // Final hop to the destination (inter group ω).
  const auto [dfirst, dlast] = index.inter_group_range(omega);
  DAGSFC_ASSERT(dlast - dfirst == 1);
  total +=
      static_cast<double>(sol.inter_paths[dfirst].length()) * model.per_hop_ms;
  return total;
}

}  // namespace

double end_to_end_delay(const Evaluator& evaluator,
                        const EmbeddingSolution& sol,
                        const DelayModel& model) {
  return accumulate_delay(evaluator, sol, model,
                          [](double a, double b) { return std::max(a, b); });
}

double serialized_delay(const Evaluator& evaluator,
                        const EmbeddingSolution& sol,
                        const DelayModel& model) {
  return accumulate_delay(evaluator, sol, model,
                          [](double a, double b) { return a + b; });
}

}  // namespace dagsfc::core
