#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "util/metrics.hpp"

namespace dagsfc::core {

namespace {

std::string path_str(const graph::Path& p) {
  std::ostringstream os;
  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    if (i) os << " - ";
    os << p.nodes[i];
  }
  if (p.edges.empty()) os << " (co-located)";
  return os.str();
}

}  // namespace

std::string describe(const Evaluator& evaluator,
                     const EmbeddingSolution& sol) {
  const ModelIndex& index = evaluator.index();
  const EmbeddingProblem& prob = index.problem();
  const net::VnfCatalog& catalog = prob.net().catalog();
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);

  os << "flow: node " << prob.flow.source << " -> node "
     << prob.flow.destination << " (rate " << prob.flow.rate << ", size "
     << prob.flow.size << ")\n";
  for (std::size_t l = 0; l < prob.dag().num_layers(); ++l) {
    os << "layer " << l + 1 << ":";
    for (SlotId s : index.layer_slots(l)) {
      os << "  " << catalog.name(index.slot_type(s)) << "@node"
         << sol.placement[s];
    }
    os << '\n';
  }
  os << "inter-layer real-paths (multicast per layer):\n";
  for (std::size_t i = 0; i < sol.inter_paths.size(); ++i) {
    os << "  [group " << index.inter_paths()[i].layer << "] "
       << path_str(sol.inter_paths[i]) << '\n';
  }
  if (!sol.inner_paths.empty()) {
    os << "inner-layer real-paths (to mergers):\n";
    for (std::size_t i = 0; i < sol.inner_paths.size(); ++i) {
      os << "  [layer " << index.inner_paths()[i].layer + 1 << "] "
         << path_str(sol.inner_paths[i]) << '\n';
    }
  }
  const ResourceUsage u = evaluator.usage(sol);
  const auto [vnf, link] = evaluator.cost_breakdown(u);
  os << "cost: " << vnf + link << " (VNF rental " << vnf << " + links "
     << link << ")\n";
  return os.str();
}

std::string describe_search(const SolveResult& result) {
  const graph::PathQueryCounters& c = result.path_queries;
  std::ostringstream os;
  os << "search: expanded " << result.expanded_sub_solutions
     << " sub-solutions, " << result.candidate_solutions << " candidates; "
     << "dijkstra " << c.dijkstra_calls << ", yen " << c.yen_calls;
  if (c.bfs_calls > 0) os << ", bfs " << c.bfs_calls;
  if (c.steiner_calls > 0) os << ", steiner " << c.steiner_calls;
  os << ", path-cache " << c.cache_hits << "/"
     << c.cache_hits + c.cache_misses << " hits";
  if (c.cache_hits + c.cache_misses > 0) {
    os << " (" << util::format_percent(c.hit_rate()) << ")";
  }
  if (c.evictions > 0) os << ", " << c.evictions << " evicted";
  return os.str();
}

std::string to_dot(const Evaluator& evaluator, const EmbeddingSolution& sol,
                   const std::string& name) {
  const ModelIndex& index = evaluator.index();
  const EmbeddingProblem& prob = index.problem();
  const net::Network& net = prob.net();
  const graph::Graph& g = net.topology();
  const ResourceUsage u = evaluator.usage(sol);

  // VNFs rented per node, for labels.
  std::vector<std::string> rented(g.num_nodes());
  for (SlotId s = 0; s < index.num_slots(); ++s) {
    std::string& label = rented[sol.placement[s]];
    if (!label.empty()) label += "\\n";
    label += net.catalog().name(index.slot_type(s));
  }

  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "graph \"" << name << "\" {\n  overlap=false;\n";
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << " [label=\"" << v;
    if (!rented[v].empty()) os << "\\n" << rented[v];
    os << "\"";
    if (v == prob.flow.source || v == prob.flow.destination) {
      os << ",shape=doublecircle";
    } else if (!rented[v].empty()) {
      os << ",shape=box,style=bold";
    } else {
      os << ",color=gray";
    }
    os << "];\n";
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& ed = g.edge(e);
    os << "  n" << ed.u << " -- n" << ed.v;
    if (u.link_uses[e] > 0) {
      os << " [style=bold,label=\"x" << u.link_uses[e] << "\"]";
    } else {
      os << " [color=gray]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dagsfc::core
