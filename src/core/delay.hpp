#pragma once
/// \file delay.hpp
/// End-to-end delay evaluation of an embedded DAG-SFC.
///
/// Delay is the *motivation* for hybrid SFCs (paper §1, building on NFP
/// [17] / ParaBox [22]): the VNFs of a parallel layer process copies of the
/// packet simultaneously, so the layer contributes the delay of its slowest
/// branch plus a light merge step — not the sum of all branches. This
/// module quantifies that benefit for concrete embeddings:
///
///   * end_to_end_delay() — the critical path through the embedding: per
///     layer, max over branches of (inter-layer hops + VNF processing +
///     inner-layer hops), plus merger processing, plus the final hop to the
///     destination;
///   * serialized_delay() — the same placements and real-paths executed the
///     classical sequential way (branches one after another); the ratio of
///     the two is the parallelization speedup the DAG bought.
///
/// The model is deliberately simple — fixed per-hop link latency and
/// per-category processing latency — because the paper's contribution is
/// cost optimization; delay here validates that cost-optimal hybrid
/// embeddings retain the latency advantage that motivated them.

#include <vector>

#include "core/solution.hpp"

namespace dagsfc::core {

struct DelayModel {
  double per_hop_ms = 1.0;   ///< latency per traversed link
  double merger_ms = 0.2;    ///< merger processing latency
  double default_vnf_ms = 1.0;
  /// Optional per-category override, indexed by VnfTypeId; entries with a
  /// negative value fall back to default_vnf_ms.
  std::vector<double> vnf_ms;

  [[nodiscard]] double processing_ms(VnfTypeId t) const {
    if (t < vnf_ms.size() && vnf_ms[t] >= 0.0) return vnf_ms[t];
    return default_vnf_ms;
  }
};

/// Critical-path delay of a valid solution under \p model.
[[nodiscard]] double end_to_end_delay(const Evaluator& evaluator,
                                      const EmbeddingSolution& solution,
                                      const DelayModel& model = {});

/// Delay if every branch of every layer were traversed sequentially (the
/// classical SFC execution) over the same placements and real-paths.
/// Always ≥ end_to_end_delay().
[[nodiscard]] double serialized_delay(const Evaluator& evaluator,
                                      const EmbeddingSolution& solution,
                                      const DelayModel& model = {});

}  // namespace dagsfc::core
