#pragma once
/// \file layered.hpp
/// Joint placement+routing embedder over the implicit layered product
/// graph (ROADMAP item: Sallam et al., "Shortest Path and Maximum Flow
/// Problems Under Service Function Chaining Constraints").
///
/// The layered construction crosses the stretched SFC's levels with the
/// substrate: state (l, v) means "layers 1..l are embedded and the packet
/// currently sits at node v". Three arc families connect the states:
///
///   * routing arcs  (l, v) → (l, w)   — one per usable substrate edge,
///     priced at the link price; they exist on every level whose *next*
///     layer is sequential (and on the final level ω, toward the
///     destination);
///   * placement arcs (l, v) → (l+1, v) — when the next layer is sequential
///     and v hosts its VNF with residual capacity, priced at the rent;
///   * gadget transitions (l, p) ⇒ (l+1, m) — when the next layer is
///     parallel: settling the boundary state fires the same enumeration the
///     exact solver runs per DP cell (minimum Steiner multicast over
///     {p} ∪ assignment, formula (9); rents; inner shortest paths to each
///     merger candidate, formula (10)), because multicast pricing is not
///     expressible as per-arc costs.
///
/// One Dijkstra pass over this graph — never materialized; successors are
/// expanded on the fly over the CSR view with a per-worker SearchWorkspace
/// (prepare_states()) — therefore chooses VNF nodes and real paths jointly
/// and is exact for the uncapacitated objective, like ExactEmbedder but
/// with the per-layer Cartesian DP replaced by label merging on routing
/// levels. Capacities are screened per resource while searching and
/// checked for real post-hoc, exactly like the exact solver.
///
/// An optional end-to-end delay budget (Ren & Han, "Embedding the Minimum
/// Cost SFC with End-to-end Delay Constraint") turns the scalar search into
/// a bounded bi-criteria one: labels carry (cost, delay), a label is
/// dominated only when both coordinates are, and the first settled label at
/// the goal is the cheapest embedding whose critical-path delay (the
/// core/delay.hpp model) fits the budget. An unset or infinite budget takes
/// the scalar code path — "no budget" *is* "budget = ∞" by construction, so
/// the two are bitwise-identical.

#include <optional>

#include "core/delay.hpp"
#include "core/embedder.hpp"

namespace dagsfc::core {

struct LayeredOptions {
  /// End-to-end delay budget (critical-path semantics of core/delay.hpp).
  /// Unset or infinite: plain min-cost search.
  std::optional<double> delay_budget_ms;
  /// Delay model used when a budget is set.
  DelayModel delay_model;
  /// Upper bound on the estimated parallel-gadget work (boundary states ×
  /// assignments, the same estimate ExactEmbedder uses) before refusing.
  std::size_t max_work = 5'000'000;
  /// Safety valve for the bi-criteria mode: maximum labels created before
  /// the solve fails with a clear reason instead of thrashing.
  std::size_t max_labels = 2'000'000;
};

class LayeredEmbedder final : public Embedder {
 public:
  explicit LayeredEmbedder(const LayeredOptions& opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "LAYERED"; }

 protected:
  [[nodiscard]] SolveResult do_solve(const ModelIndex& index,
                                     const net::CapacityLedger& ledger,
                                     Rng& rng, TraceSink* trace,
                                     graph::SearchWorkspace* workspace)
      const override;

 private:
  LayeredOptions opts_;
};

}  // namespace dagsfc::core
