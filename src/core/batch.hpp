#pragma once
/// \file batch.hpp
/// Batch embedding: admit a set of flow requests onto one network,
/// sequentially committing resources (an operator-side extension of the
/// paper's single-flow problem).
///
/// Order matters under capacity contention: a greedy commitment sequence
/// can strand capacity for later requests. Four strategies are provided:
///   * Arrival       — requests in the given order (baseline);
///   * SmallestFirst — fewest VNFs first (packs many small tenants);
///   * LargestFirst  — most VNFs first (big tenants get first pick);
///   * CheapestFirst — probe-solve every request on the *nominal* network,
///     then commit in ascending probe cost (two-phase; the probe is a
///     lower-bound estimate of how constrained a request is).
///
/// Every request is solved against the residual ledger at its turn; failed
/// requests are skipped (no retries), matching the Erlang-loss semantics of
/// sim::run_dynamic.

#include <span>

#include "core/embedder.hpp"

namespace dagsfc::core {

struct BatchRequest {
  const sfc::DagSfc* sfc = nullptr;
  Flow flow;
};

enum class BatchOrder { Arrival, SmallestFirst, LargestFirst, CheapestFirst };

struct BatchItemResult {
  std::size_t request_index = 0;  ///< index into the input span
  SolveResult result;
};

struct BatchResult {
  /// One entry per request, in *commit* order.
  std::vector<BatchItemResult> items;
  std::size_t accepted = 0;
  double total_cost = 0.0;

  [[nodiscard]] double acceptance_ratio() const {
    return items.empty() ? 0.0
                         : static_cast<double>(accepted) /
                               static_cast<double>(items.size());
  }
};

/// Embeds the batch onto \p network starting from nominal capacities,
/// committing each accepted request before solving the next.
[[nodiscard]] BatchResult embed_batch(const net::Network& network,
                                      std::span<const BatchRequest> requests,
                                      const Embedder& embedder,
                                      BatchOrder order, Rng& rng);

}  // namespace dagsfc::core
