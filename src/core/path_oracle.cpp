#include "core/path_oracle.hpp"

#include "graph/oracle.hpp"

namespace dagsfc::core {

const graph::EdgeMask* PathOracle::usable_mask() {
  const std::uint64_t epoch = ledger_->epoch();
  if (!mask_ready_ || mask_epoch_ != epoch) {
    // One link_can_carry sweep per epoch; every probe afterwards is a bit
    // test. The ledger bumps the epoch on any admission/release that can
    // change a residual capacity, so a stale mask is impossible; PathCache
    // entries themselves stay valid across epochs via the ledger's
    // footprint-scoped invalidation hooks.
    usable_mask_.assign(g_->num_edges(), true);
    mask_full_ = true;
    for (graph::EdgeId e = 0; e < g_->num_edges(); ++e) {
      if (!ledger_->link_can_carry(e, rate_)) {
        usable_mask_.clear(e);
        mask_full_ = false;
      }
    }
    mask_epoch_ = epoch;
    mask_ready_ = true;
  }
  usable_view_ = usable_mask_.view();
  return &usable_view_;
}

const graph::EdgeMask* PathOracle::effective_mask() {
  const graph::EdgeMask* mask = usable_mask();
  return mask_full_ ? nullptr : mask;
}

const graph::DistanceOracle* PathOracle::pruning_oracle() const {
  const graph::DistanceOracle* o = ws_->distance_oracle();
  return (o != nullptr && o->matches(*g_)) ? o : nullptr;
}

std::shared_ptr<const graph::ShortestPathTree> PathOracle::tree(
    NodeId source) {
  if (!flat_) {
    if (auto* cache = ledger_->path_cache()) {
      return cache->tree(*g_, source, context(), usable_, counters_);
    }
    ++counters_.dijkstra_calls;
    return std::make_shared<const graph::ShortestPathTree>(
        graph::dijkstra(*g_, source, usable_));
  }
  const graph::EdgeMask* mask = usable_mask();
  if (auto* cache = ledger_->path_cache()) {
    return cache->tree(*g_, source, context(), mask, *ws_, counters_);
  }
  ++counters_.dijkstra_calls;
  return std::make_shared<const graph::ShortestPathTree>(
      graph::dijkstra(*g_, source, *ws_, mask));
}

std::optional<graph::Path> PathOracle::min_cost_path(NodeId a, NodeId b) {
  if (ledger_->path_cache()) return tree(a)->path_to(b);
  ++counters_.dijkstra_calls;
  if (!flat_) return graph::min_cost_path(*g_, a, b, usable_);
  const graph::EdgeMask* mask = effective_mask();
  if (const graph::DistanceOracle* o = pruning_oracle()) {
    graph::PruneStats stats;
    graph::AltQuery alt = o->query(a, b, /*seed_upper_bound=*/mask == nullptr);
    alt.stats = &stats;
    auto path = graph::min_cost_path(*g_, a, b, *ws_, mask, alt);
    counters_.oracle_tested += stats.tested;
    counters_.oracle_pruned += stats.pruned;
    return path;
  }
  return graph::min_cost_path(*g_, a, b, *ws_, mask);
}

std::vector<std::optional<graph::Path>> PathOracle::min_cost_paths(
    NodeId a, std::span<const NodeId> targets) {
  std::vector<std::optional<graph::Path>> out;
  out.reserve(targets.size());
  if (ledger_->path_cache()) {
    const auto t = tree(a);
    for (const NodeId b : targets) out.push_back(t->path_to(b));
    return out;
  }
  if (!flat_) {
    for (const NodeId b : targets) {
      ++counters_.dijkstra_calls;
      out.push_back(graph::min_cost_path(*g_, a, b, usable_));
    }
    return out;
  }
  // One multi-target pass; counts as one computation. Each extraction is
  // bitwise the early-exit answer (see dijkstra_into_targets).
  ++counters_.dijkstra_calls;
  graph::dijkstra_into_targets(*g_, a, targets, *ws_, effective_mask());
  for (const NodeId b : targets) {
    out.push_back(graph::extract_path(*ws_, b));
  }
  return out;
}

std::vector<graph::Path> PathOracle::k_shortest(NodeId a, NodeId b,
                                                std::size_t k) {
  if (!flat_) {
    if (auto* cache = ledger_->path_cache()) {
      return *cache->k_paths(*g_, a, b, k, context(), usable_, counters_);
    }
    ++counters_.yen_calls;
    return graph::k_shortest_paths(*g_, a, b, k, usable_);
  }
  const graph::EdgeMask* mask = usable_mask();
  if (auto* cache = ledger_->path_cache()) {
    return *cache->k_paths(*g_, a, b, k, context(), mask, *ws_, counters_);
  }
  ++counters_.yen_calls;
  if (const graph::DistanceOracle* o = pruning_oracle()) {
    const graph::EdgeMask* eff = effective_mask();
    graph::PruneStats stats;
    graph::AltQuery alt = o->query(a, b, /*seed_upper_bound=*/eff == nullptr);
    alt.stats = &stats;
    auto paths = graph::k_shortest_paths(*g_, a, b, k, eff, *ws_, alt);
    counters_.oracle_tested += stats.tested;
    counters_.oracle_pruned += stats.pruned;
    return paths;
  }
  return graph::k_shortest_paths(*g_, a, b, k, mask, *ws_);
}

std::vector<graph::Path> PathOracle::k_shortest_filtered(
    NodeId a, NodeId b, std::size_t k, const graph::EdgeFilter& filter) {
  ++counters_.yen_calls;
  if (!flat_) return graph::k_shortest_paths(*g_, a, b, k, filter);
  // Materialize once (one filter call per edge) so the whole Yen run —
  // every spur Dijkstra included — probes bits instead of the closure.
  filtered_mask_.fill_from(*g_, filter);
  const graph::EdgeMask mask = filtered_mask_.view();
  if (const graph::DistanceOracle* o = pruning_oracle()) {
    // Always masked here, so never seed the landmark upper bound.
    graph::PruneStats stats;
    graph::AltQuery alt = o->query(a, b, /*seed_upper_bound=*/false);
    alt.stats = &stats;
    auto paths = graph::k_shortest_paths(*g_, a, b, k, &mask, *ws_, alt);
    counters_.oracle_tested += stats.tested;
    counters_.oracle_pruned += stats.pruned;
    return paths;
  }
  return graph::k_shortest_paths(*g_, a, b, k, &mask, *ws_);
}

std::optional<graph::SteinerTree> PathOracle::steiner(
    const std::vector<NodeId>& terminals) {
  ++counters_.steiner_calls;
  if (!flat_) return graph::steiner_tree(*g_, terminals, usable_);
  return graph::steiner_tree(*g_, terminals, usable_mask(), *ws_);
}

}  // namespace dagsfc::core
