#pragma once
/// \file search_tree.hpp
/// Forward/Backward Search Trees (paper §4.2.2, §4.3.2, Table 1, Fig. 4).
///
/// An FST stores the result of one forward search I^F_l: the root is the
/// layer's start node, each later tree node is a network node first reached
/// in some BFS iteration, and its *father* (the dotted arrow of Fig. 4) is
/// the neighbor through which it was discovered — so walking father pointers
/// instantiates a real-path back to the root. A BST is structurally
/// identical with the layer's end node (merger) as root.
///
/// The paper stores the tree in a binary left-child/right-sibling encoding
/// (Table 1: father, left child = first node found in the next iteration,
/// right child = next node of the same iteration). We keep the natural
/// n-ary form for the algorithms and expose the equivalent binary encoding
/// through binary_view() — tests verify the two views agree.

#include <vector>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"

namespace dagsfc::core {

class SearchTree {
 public:
  using TreeIndex = std::uint32_t;
  static constexpr TreeIndex kNone = static_cast<TreeIndex>(-1);

  struct Node {
    graph::NodeId network_node = graph::kInvalidNode;  // Table 1 element 4
    TreeIndex father = kNone;                          // element 1
    std::uint32_t ring = 0;  ///< BFS iteration that discovered the node
    std::vector<TreeIndex> children;  ///< natural n-ary form
  };

  /// Binary left-child/right-sibling record per Table 1.
  struct BinaryNode {
    TreeIndex father = kNone;
    TreeIndex left_child = kNone;   ///< first child (next iteration)
    TreeIndex right_child = kNone;  ///< next node of the same iteration
    graph::NodeId network_node = graph::kInvalidNode;
  };

  /// Builds the tree from a completed RingExpander: one tree node per
  /// visited network node, fathered by its BFS parent.
  static SearchTree from_expander(const graph::RingExpander& expander);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(TreeIndex i) const {
    DAGSFC_CHECK(i < nodes_.size());
    return nodes_[i];
  }
  [[nodiscard]] TreeIndex root() const noexcept { return 0; }
  [[nodiscard]] graph::NodeId root_network_node() const {
    return node(0).network_node;
  }

  /// Tree index of a network node, or kNone if it was not searched.
  [[nodiscard]] TreeIndex find(graph::NodeId v) const;
  [[nodiscard]] bool contains(graph::NodeId v) const {
    return find(v) != kNone;
  }

  /// All network nodes in the tree, in discovery order.
  [[nodiscard]] std::vector<graph::NodeId> network_nodes() const;

  /// The real-path from \p v to the root obtained by walking father
  /// pointers (the "existing path to the root" of §4.2.2). Requires v in
  /// the tree and each father hop to be an actual link of \p g.
  [[nodiscard]] graph::Path path_to_root(const graph::Graph& g,
                                         graph::NodeId v) const;
  /// Same path reversed: root → v.
  [[nodiscard]] graph::Path path_from_root(const graph::Graph& g,
                                           graph::NodeId v) const;

  /// The paper's binary encoding, index-aligned with node().
  [[nodiscard]] std::vector<BinaryNode> binary_view() const;

 private:
  std::vector<Node> nodes_;
  std::vector<TreeIndex> index_of_;  // network node -> tree index
};

}  // namespace dagsfc::core
