#include "core/embedder.hpp"

#include "util/metrics.hpp"

namespace dagsfc::core {

SolveResult Embedder::solve(const ModelIndex& index,
                            const net::CapacityLedger& ledger, Rng& rng,
                            TraceSink* trace,
                            graph::SearchWorkspace* workspace) const {
  const Tracer t(trace);
  if (t) {
    SolveEvent begin;
    begin.kind = TraceEventKind::SolveBegin;
    begin.s0 = name();
    t(begin);
  }

  SolveResult r;
  {
    // Per-algorithm wall-time meter on the global registry
    // (dagsfc_phase_seconds{phase="solve/<name>"}), alive regardless of
    // DAGSFC_TRACE: this is the telemetry plane, not the trace plane. The
    // registry lookup is once per solve — noise next to the solve itself.
    const util::PhaseMeter meter(util::MetricRegistry::global(),
                                 "solve/" + name());
    const util::PhaseTimer timer(meter);
    r = do_solve(index, ledger, rng, trace, workspace);
  }

  if (t) {
    if (r.ok()) {
      // Cost events: objective (1) term by term, in the Evaluator's exact
      // order and arithmetic, so EmbeddingTrace::reconstructed_cost() is
      // bitwise-equal to r.cost.
      const net::Network& net = index.problem().net();
      const Evaluator evaluator(index);
      for (const Evaluator::CostTerm& term :
           evaluator.cost_terms(*r.solution)) {
        SolveEvent e;
        e.kind = term.vnf ? TraceEventKind::VnfTerm : TraceEventKind::LinkTerm;
        e.i0 = term.id;
        e.i1 = term.uses;
        e.i2 = term.vnf
                   ? static_cast<std::int64_t>(
                         net.instance(static_cast<net::InstanceId>(term.id))
                             .node)
                   : static_cast<std::int64_t>(term.raw_uses);
        e.v0 = term.value;
        e.v1 = term.price;
        t(e);
      }
    }
    // Cache events: shortest-path work attribution. The only category
    // allowed to differ between cache-on and cache-off runs.
    {
      SolveEvent q;
      q.kind = TraceEventKind::PathQueries;
      q.i0 = static_cast<std::int64_t>(r.path_queries.dijkstra_calls);
      q.i1 = static_cast<std::int64_t>(r.path_queries.yen_calls);
      t(q);
      SolveEvent c;
      c.kind = TraceEventKind::CacheStats;
      c.i0 = static_cast<std::int64_t>(r.path_queries.cache_hits);
      c.i1 = static_cast<std::int64_t>(r.path_queries.cache_misses);
      c.i2 = static_cast<std::int64_t>(r.path_queries.evictions);
      t(c);
    }
    SolveEvent end;
    end.kind = TraceEventKind::SolveEnd;
    end.i0 = r.ok() ? 1 : 0;
    end.v0 = r.cost;
    end.s0 = r.failure_reason;
    t(end);
  }
  return r;
}

}  // namespace dagsfc::core
