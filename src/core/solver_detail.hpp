#pragma once
/// \file solver_detail.hpp
/// Small helpers shared by the optimality-grade solvers (EXACT and
/// LAYERED): trivial single-node paths, path extraction inside a fixed
/// Steiner-tree edge set, and the odometer-style assignment enumerator.
/// They were file-local to exact.cpp until the layered embedder needed the
/// identical reconstruction arithmetic — both solvers must produce the same
/// real-paths from the same decisions for their costs to agree bitwise.

#include <algorithm>
#include <map>
#include <queue>
#include <vector>

#include "graph/graph.hpp"

namespace dagsfc::core::detail {

inline graph::Path trivial_path(graph::NodeId v) {
  graph::Path p;
  p.nodes.push_back(v);
  return p;
}

/// Path a→b inside a fixed edge set (the Steiner tree), by BFS. The tree is
/// connected over its terminals, so the path exists whenever both endpoints
/// touch the tree (or a == b).
inline graph::Path path_in_tree(const graph::Graph& g,
                                const std::vector<graph::EdgeId>& tree,
                                graph::NodeId a, graph::NodeId b) {
  if (a == b) return trivial_path(a);
  std::map<graph::NodeId,
           std::vector<std::pair<graph::NodeId, graph::EdgeId>>>
      adj;
  for (graph::EdgeId e : tree) {
    const auto& ed = g.edge(e);
    adj[ed.u].emplace_back(ed.v, e);
    adj[ed.v].emplace_back(ed.u, e);
  }
  std::map<graph::NodeId, std::pair<graph::NodeId, graph::EdgeId>> parent;
  std::queue<graph::NodeId> q;
  q.push(a);
  parent[a] = {a, graph::kInvalidEdge};
  while (!q.empty()) {
    const graph::NodeId v = q.front();
    q.pop();
    if (v == b) break;
    for (const auto& [w, e] : adj[v]) {
      if (!parent.count(w)) {
        parent[w] = {v, e};
        q.push(w);
      }
    }
  }
  DAGSFC_CHECK_MSG(parent.count(b), "endpoints not connected by the tree");
  graph::Path p;
  graph::NodeId v = b;
  while (v != a) {
    p.nodes.push_back(v);
    p.edges.push_back(parent[v].second);
    v = parent[v].first;
  }
  p.nodes.push_back(a);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.edges.begin(), p.edges.end());
  p.cost = g.path_cost(p);
  return p;
}

/// Odometer over per-slot host choices: visits the full cross product in
/// lexicographic order (last slot fastest), or nothing when a slot has no
/// candidates.
class Enumerator {
 public:
  explicit Enumerator(std::vector<std::vector<graph::NodeId>> choices)
      : choices_(std::move(choices)), cursor_(choices_.size(), 0) {
    for (const auto& c : choices_) {
      if (c.empty()) done_ = true;
    }
  }
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] std::vector<graph::NodeId> current() const {
    std::vector<graph::NodeId> out(choices_.size());
    for (std::size_t i = 0; i < choices_.size(); ++i) {
      out[i] = choices_[i][cursor_[i]];
    }
    return out;
  }
  void advance() {
    for (std::size_t i = choices_.size(); i-- > 0;) {
      if (++cursor_[i] < choices_[i].size()) return;
      cursor_[i] = 0;
    }
    done_ = true;
  }

 private:
  std::vector<std::vector<graph::NodeId>> choices_;
  std::vector<std::size_t> cursor_;
  bool done_ = false;
};

}  // namespace dagsfc::core::detail
