#include "core/batch.hpp"

#include <algorithm>
#include <numeric>

#include "graph/dijkstra.hpp"

namespace dagsfc::core {

namespace {

std::vector<std::size_t> commit_order(const net::Network& network,
                                      std::span<const BatchRequest> requests,
                                      const Embedder& embedder,
                                      BatchOrder order, Rng& rng) {
  std::vector<std::size_t> idx(requests.size());
  std::iota(idx.begin(), idx.end(), 0);
  switch (order) {
    case BatchOrder::Arrival:
      break;
    case BatchOrder::SmallestFirst:
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                   std::size_t b) {
        return requests[a].sfc->size() < requests[b].sfc->size();
      });
      break;
    case BatchOrder::LargestFirst:
      std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a,
                                                   std::size_t b) {
        return requests[a].sfc->size() > requests[b].sfc->size();
      });
      break;
    case BatchOrder::CheapestFirst: {
      // Probe phase: solve each request alone on the nominal network. An
      // unsolvable probe sorts last (it will fail again, cheaply).
      std::vector<double> probe(requests.size(), graph::kInfCost);
      graph::SearchWorkspace ws;  // warm buffers across the probe solves
      for (std::size_t i = 0; i < requests.size(); ++i) {
        EmbeddingProblem problem;
        problem.network = &network;
        problem.sfc = requests[i].sfc;
        problem.flow = requests[i].flow;
        const ModelIndex index(problem);
        const SolveResult r = embedder.solve_fresh(index, rng, nullptr, &ws);
        if (r.ok()) probe[i] = r.cost;
      }
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::size_t a, std::size_t b) {
                         return probe[a] < probe[b];
                       });
      break;
    }
  }
  return idx;
}

}  // namespace

BatchResult embed_batch(const net::Network& network,
                        std::span<const BatchRequest> requests,
                        const Embedder& embedder, BatchOrder order,
                        Rng& rng) {
  for (const BatchRequest& r : requests) {
    DAGSFC_CHECK_MSG(r.sfc != nullptr, "batch request without an SFC");
  }
  BatchResult out;
  net::CapacityLedger ledger(network);
  graph::SearchWorkspace ws;  // warm buffers across the batch
  for (std::size_t i : commit_order(network, requests, embedder, order, rng)) {
    EmbeddingProblem problem;
    problem.network = &network;
    problem.sfc = requests[i].sfc;
    problem.flow = requests[i].flow;
    const ModelIndex index(problem);
    SolveResult r = embedder.solve(index, ledger, rng, nullptr, &ws);
    if (r.ok()) {
      const Evaluator evaluator(index);
      evaluator.commit(evaluator.usage(*r.solution), ledger);
      ++out.accepted;
      out.total_cost += r.cost;
    }
    out.items.push_back(BatchItemResult{i, std::move(r)});
  }
  return out;
}

}  // namespace dagsfc::core
