#pragma once
/// \file report.hpp
/// Human-readable rendering of embedding solutions, used by the examples
/// and handy when debugging test failures.

#include <string>

#include "core/embedder.hpp"
#include "core/solution.hpp"

namespace dagsfc::core {

/// Multi-line description: per-layer placements, every meta-path's
/// real-path, and the cost breakdown.
[[nodiscard]] std::string describe(const Evaluator& evaluator,
                                   const EmbeddingSolution& solution);

/// One-line search-effort summary of a solve: expanded sub-solutions,
/// candidate solutions, Dijkstra/Yen computations and path-cache hit rate
/// (see graph::PathQueryCounters).
[[nodiscard]] std::string describe_search(const SolveResult& result);

/// Graphviz overlay of the embedding on the network topology: hosting
/// nodes are boxed and labeled with the VNFs they run, links carrying the
/// flow are bold and annotated with their reuse count α_e. Unused nodes
/// and links are drawn dimmed for context.
[[nodiscard]] std::string to_dot(const Evaluator& evaluator,
                                 const EmbeddingSolution& solution,
                                 const std::string& name);

}  // namespace dagsfc::core
