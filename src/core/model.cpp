#include "core/model.hpp"

namespace dagsfc::core {

void EmbeddingProblem::validate() const {
  DAGSFC_CHECK(network != nullptr && sfc != nullptr);
  DAGSFC_CHECK(network->topology().has_node(flow.source));
  DAGSFC_CHECK(network->topology().has_node(flow.destination));
  DAGSFC_CHECK_MSG(flow.rate > 0.0, "flow rate R must be positive");
  DAGSFC_CHECK_MSG(flow.size > 0.0, "flow size z must be positive");
  sfc->validate(network->catalog());
}

ModelIndex::ModelIndex(const EmbeddingProblem& problem) : problem_(&problem) {
  problem.validate();
  const sfc::DagSfc& dag = problem.dag();
  const net::VnfCatalog& catalog = problem.net().catalog();
  const std::size_t omega = dag.num_layers();

  // Slots: VNFs of each layer in order, then the layer's merger.
  layer_slot_ids_.resize(omega);
  for (std::size_t l = 0; l < omega; ++l) {
    const sfc::Layer& layer = dag.layer(l);
    for (VnfTypeId t : layer.vnfs) {
      layer_slot_ids_[l].push_back(static_cast<SlotId>(slot_types_.size()));
      slot_types_.push_back(t);
      slot_layers_.push_back(static_cast<std::uint32_t>(l));
      slot_is_merger_.push_back(0);
    }
    if (layer.has_merger()) {
      layer_slot_ids_[l].push_back(static_cast<SlotId>(slot_types_.size()));
      slot_types_.push_back(catalog.merger());
      slot_layers_.push_back(static_cast<std::uint32_t>(l));
      slot_is_merger_.push_back(1);
    }
  }

  // Inter-layer groups 0..ω: group g<ω fans out from the previous endpoint
  // to every VNF slot of layer g; group ω is the single hop to t.
  inter_offsets_.push_back(0);
  for (std::size_t g = 0; g <= omega; ++g) {
    const SlotRef from = g == 0 ? SlotRef::source()
                                : SlotRef::of(layer_end_slot(g - 1));
    if (g < omega) {
      const sfc::Layer& layer = dag.layer(g);
      for (std::size_t i = 0; i < layer.width(); ++i) {
        inter_paths_.push_back(MetaPathDesc{
            MetaPathDesc::Group::InterLayer, static_cast<std::uint32_t>(g),
            from, SlotRef::of(vnf_slot(g, i))});
      }
    } else {
      inter_paths_.push_back(MetaPathDesc{MetaPathDesc::Group::InterLayer,
                                          static_cast<std::uint32_t>(g), from,
                                          SlotRef::destination()});
    }
    inter_offsets_.push_back(inter_paths_.size());
  }

  // Inner-layer meta-paths: VNF → merger for parallel layers.
  inner_offsets_.push_back(0);
  for (std::size_t l = 0; l < omega; ++l) {
    if (dag.layer(l).has_merger()) {
      const SlotRef to = SlotRef::of(merger_slot(l));
      for (std::size_t i = 0; i < dag.layer(l).width(); ++i) {
        inner_paths_.push_back(MetaPathDesc{
            MetaPathDesc::Group::InnerLayer, static_cast<std::uint32_t>(l),
            SlotRef::of(vnf_slot(l, i)), to});
      }
    }
    inner_offsets_.push_back(inner_paths_.size());
  }
}

SlotId ModelIndex::vnf_slot(std::size_t l, std::size_t gamma) const {
  DAGSFC_CHECK(l < layer_slot_ids_.size());
  DAGSFC_CHECK(gamma < problem_->dag().layer(l).width());
  return layer_slot_ids_[l][gamma];
}

SlotId ModelIndex::merger_slot(std::size_t l) const {
  DAGSFC_CHECK(l < layer_slot_ids_.size());
  DAGSFC_CHECK_MSG(problem_->dag().layer(l).has_merger(),
                   "layer has no merger");
  return layer_slot_ids_[l].back();
}

SlotId ModelIndex::layer_end_slot(std::size_t l) const {
  DAGSFC_CHECK(l < layer_slot_ids_.size());
  return layer_slot_ids_[l].back();  // merger if parallel, else the only VNF
}

std::span<const SlotId> ModelIndex::layer_slots(std::size_t l) const {
  DAGSFC_CHECK(l < layer_slot_ids_.size());
  return layer_slot_ids_[l];
}

std::pair<std::size_t, std::size_t> ModelIndex::inter_group_range(
    std::size_t g) const {
  DAGSFC_CHECK(g + 1 < inter_offsets_.size());
  return {inter_offsets_[g], inter_offsets_[g + 1]};
}

std::pair<std::size_t, std::size_t> ModelIndex::inner_layer_range(
    std::size_t l) const {
  DAGSFC_CHECK(l + 1 < inner_offsets_.size());
  return {inner_offsets_[l], inner_offsets_[l + 1]};
}

}  // namespace dagsfc::core
