#pragma once
/// \file backtracking.hpp
/// The Breadth-first Backtracking Embedding engine (paper §4, Algorithm 1),
/// parameterized so that plain BBE and MBBE are two option presets:
///
///   BBE   — meta-paths instantiated by walking FST/BST tree paths; no
///           forward-search cap; all candidate sub-solutions kept.
///   MBBE  — strategy (1): forward search bounded by X_max nodes;
///           strategy (2): meta-paths instantiated by minimum-cost paths on
///           the real-time (residual) network;
///           strategy (3): only the cheapest X_d children of each
///           sub-solution enter the sub-solution tree (X_d-tree).
///
/// Per layer, for every sub-solution of the previous layer, the engine runs
/// forward search (§4.2) from that sub-solution's end node until the
/// searched node set hosts all VNFs the layer requires, then — for parallel
/// layers — backward search (§4.3) from every merger-hosting node of the
/// forward set, restricted to the forward set, and finally candidate
/// sub-solution generation (§4.4) over VNF allocations inside the backward
/// set. After the last layer each surviving sub-solution is completed with a
/// minimum-cost path to the destination and the cheapest feasible complete
/// solution wins.
///
/// Two safety valves the paper implies but does not parameterize (it reports
/// BBE running out of memory at SFC size > 5): a cap on allocations
/// enumerated per FST-BST pair and a cap on the per-layer sub-solution pool.
/// Both default high enough not to bind in the paper's configurations and
/// are surfaced in the ablation bench.

#include <optional>

#include "core/delay.hpp"
#include "core/embedder.hpp"
#include "core/search_tree.hpp"

namespace dagsfc::core {

struct BacktrackingOptions {
  /// MBBE strategy (2): instantiate meta-paths with Dijkstra min-cost paths
  /// on the residual network instead of FST/BST tree walks.
  bool min_cost_path_instantiation = false;
  /// MBBE strategy (1): forward search halts once its node set reaches this
  /// size; 0 = unbounded (BBE).
  std::size_t x_max = 0;
  /// MBBE strategy (3): cheapest children kept per sub-solution; 0 = all.
  std::size_t x_d = 0;
  /// Safety valve: VNF allocations enumerated per FST-BST pair.
  std::size_t max_assignments_per_pair = 256;
  /// Safety valve: per-layer sub-solution pool (cheapest kept).
  std::size_t max_pool = 4096;
  /// Candidate real-paths enumerated per meta-path — the paper's ρ index
  /// over the real-path set P^a_b (its §4.5 complexity analysis calls the
  /// per-pair path multiplicity h). 1 = only the tree path (BBE) or the
  /// min-cost path (MBBE); >1 adds Yen alternatives (restricted to the
  /// search-tree node set in tree mode).
  std::size_t paths_per_meta_path = 1;
  /// Safety valve: path combinations enumerated per (merger, allocation).
  std::size_t max_path_combos = 8;
  /// Optional end-to-end delay budget (critical-path semantics, see
  /// core/delay.hpp): sub-solutions whose accumulated delay exceeds the
  /// budget are pruned and the final winner is the cheapest embedding that
  /// *meets the bound* — the cost/latency joint optimization the paper
  /// defers to future work. Pruning stays cost-first (X_d keeps the
  /// cheapest in-budget children), so a very tight budget can fail even
  /// when a feasible embedding exists. nullopt = unconstrained.
  std::optional<double> delay_budget_ms;
  /// Delay model used when delay_budget_ms is set.
  DelayModel delay_model;
};

class BacktrackingEngine {
 public:
  explicit BacktrackingEngine(BacktrackingOptions opts) : opts_(opts) {}

  [[nodiscard]] const BacktrackingOptions& options() const noexcept {
    return opts_;
  }

  /// \p trace, when non-null, receives the layer-by-layer Decision events
  /// (ring searches, X_max caps, X_d/max_pool pruning, final candidates).
  /// \p workspace is an optional caller-owned search-buffer loan (see
  /// Embedder::solve).
  [[nodiscard]] SolveResult run(const ModelIndex& index,
                                const net::CapacityLedger& ledger,
                                TraceSink* trace = nullptr,
                                graph::SearchWorkspace* workspace =
                                    nullptr) const;

 private:
  BacktrackingOptions opts_;
};

/// Plain BBE (§4.1–§4.4).
class BbeEmbedder final : public Embedder {
 public:
  BbeEmbedder() : engine_(BacktrackingOptions{}) {}
  explicit BbeEmbedder(const BacktrackingOptions& opts) : engine_(opts) {}

  [[nodiscard]] std::string name() const override { return "BBE"; }

 protected:
  [[nodiscard]] SolveResult do_solve(const ModelIndex& index,
                                     const net::CapacityLedger& ledger,
                                     Rng& rng, TraceSink* trace,
                                     graph::SearchWorkspace* workspace)
      const override;

 private:
  BacktrackingEngine engine_;
};

struct MbbeOptions {
  std::size_t x_max = 50;  ///< forward-search node cap (≤ n)
  std::size_t x_d = 4;     ///< children kept per sub-solution
  /// Optional delay budget, forwarded to the engine (see
  /// BacktrackingOptions::delay_budget_ms).
  std::optional<double> delay_budget_ms;
  DelayModel delay_model;
};

/// Mini-path BBE (§4.5) — BBE plus the three complementary strategies.
class MbbeEmbedder final : public Embedder {
 public:
  explicit MbbeEmbedder(const MbbeOptions& opts = {});

  [[nodiscard]] std::string name() const override { return "MBBE"; }

 protected:
  [[nodiscard]] SolveResult do_solve(const ModelIndex& index,
                                     const net::CapacityLedger& ledger,
                                     Rng& rng, TraceSink* trace,
                                     graph::SearchWorkspace* workspace)
      const override;

 private:
  BacktrackingEngine engine_;
};

}  // namespace dagsfc::core
