#include "core/validator.hpp"

#include <bit>
#include <cstdint>
#include <set>
#include <sstream>

namespace dagsfc::core {

std::string ValidationReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) os << "; ";
    os << errors[i];
  }
  return os.str();
}

namespace {

/// Walk check from first principles: contiguous over the topology's edge
/// endpoints, edge-distinct, endpoints as demanded by the layer order.
void check_walk(const graph::Graph& g, const graph::Path& p, NodeId from,
                NodeId to, const std::string& what,
                std::vector<std::string>& errors) {
  if (p.nodes.empty()) {
    errors.push_back(what + ": not instantiated");
    return;
  }
  if (p.edges.size() + 1 != p.nodes.size()) {
    errors.push_back(what + ": node/edge counts disagree");
    return;
  }
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < p.edges.size(); ++i) {
    const graph::EdgeId e = p.edges[i];
    if (e >= g.num_edges()) {
      errors.push_back(what + ": nonexistent edge");
      return;
    }
    const graph::Edge& ed = g.edge(e);
    const NodeId a = p.nodes[i];
    const NodeId b = p.nodes[i + 1];
    const bool spans = (ed.u == a && ed.v == b) || (ed.u == b && ed.v == a);
    if (!spans) {
      errors.push_back(what + ": hop " + std::to_string(i) +
                       " does not follow its edge");
      return;
    }
    weight_sum += ed.weight;
  }
  const std::set<graph::EdgeId> distinct(p.edges.begin(), p.edges.end());
  if (distinct.size() != p.edges.size()) {
    errors.push_back(what + ": repeats a link");
  }
  if (p.source() != from || p.target() != to) {
    std::ostringstream os;
    os << what << ": runs " << p.source() << " -> " << p.target()
       << " but the layer order demands " << from << " -> " << to;
    errors.push_back(os.str());
  }
  // Path::cost is advisory for consumers; allow summation-order slack (Yen
  // computes spur costs as prefix+suffix sums) but not a wrong total.
  const double drift = p.cost - weight_sum;
  const double scale = weight_sum < 1.0 ? 1.0 : weight_sum;
  if (drift > 1e-9 * scale || drift < -1e-9 * scale) {
    errors.push_back(what + ": stored cost disagrees with its edge weights");
  }
}

}  // namespace

ValidationReport SolutionValidator::check_solution(
    const EmbeddingSolution& sol, const net::CapacityLedger& ledger) const {
  ValidationReport report;
  auto& errors = report.errors;
  const ModelIndex& index = *index_;
  const EmbeddingProblem& prob = index.problem();
  const net::Network& net = prob.net();
  const graph::Graph& g = net.topology();
  const sfc::DagSfc& dag = prob.dag();
  const std::size_t omega = dag.num_layers();

  // ---- Placement: deployment-set membership, formula (7) ------------------
  if (sol.placement.size() != index.num_slots()) {
    errors.push_back("placement vector has wrong size");
    return report;
  }
  for (SlotId s = 0; s < index.num_slots(); ++s) {
    const NodeId v = sol.placement[s];
    if (v >= g.num_nodes()) {
      errors.push_back("slot " + std::to_string(s) +
                       " placed on nonexistent node");
    } else if (!net.find_instance(v, index.slot_type(s)).has_value()) {
      errors.push_back("slot " + std::to_string(s) + " placed on node " +
                       std::to_string(v) +
                       " outside the VNF's deployment set");
    }
  }
  if (!errors.empty()) return report;

  if (sol.inter_paths.size() != index.inter_paths().size()) {
    errors.push_back("inter-layer path vector has wrong size");
    return report;
  }
  if (sol.inner_paths.size() != index.inner_paths().size()) {
    errors.push_back("inner-layer path vector has wrong size");
    return report;
  }

  // ---- Layer order: endpoints re-derived from the DAG, not from the
  // meta-path table the embedders were handed ------------------------------
  for (std::size_t l = 0; l <= omega; ++l) {
    const NodeId from = l == 0
                            ? prob.flow.source
                            : sol.placement[index.layer_end_slot(l - 1)];
    const auto [first, last] = index.inter_group_range(l);
    if (l == omega) {
      if (last - first != 1) {
        errors.push_back("destination group is not a single path");
        continue;
      }
      check_walk(g, sol.inter_paths[first], from, prob.flow.destination,
                 "destination path", errors);
      continue;
    }
    const sfc::Layer& layer = dag.layer(l);
    if (last - first != layer.vnfs.size()) {
      errors.push_back("inter group " + std::to_string(l) +
                       " has the wrong path count");
      continue;
    }
    for (std::size_t i = first; i < last; ++i) {
      const NodeId to = sol.placement[index.vnf_slot(l, i - first)];
      check_walk(g, sol.inter_paths[i], from, to,
                 "inter path " + std::to_string(i) + " (layer " +
                     std::to_string(l) + ")",
                 errors);
    }
    const auto [nfirst, nlast] = index.inner_layer_range(l);
    if (!layer.has_merger()) {
      if (nfirst != nlast) {
        errors.push_back("sequential layer " + std::to_string(l) +
                         " has inner paths");
      }
      continue;
    }
    if (nlast - nfirst != layer.vnfs.size()) {
      errors.push_back("inner range of layer " + std::to_string(l) +
                       " has the wrong path count");
      continue;
    }
    const NodeId merger = sol.placement[index.merger_slot(l)];
    for (std::size_t i = nfirst; i < nlast; ++i) {
      const NodeId branch = sol.placement[index.vnf_slot(l, i - nfirst)];
      check_walk(g, sol.inner_paths[i], branch, merger,
                 "inner path " + std::to_string(i) + " (layer " +
                     std::to_string(l) + ")",
                 errors);
    }
  }
  if (!errors.empty()) return report;

  // ---- Reuse counts from scratch: formulas (7), (9), (10) -----------------
  std::vector<std::uint32_t> instance_uses(net.num_instances(), 0);
  for (SlotId s = 0; s < index.num_slots(); ++s) {
    ++instance_uses[*net.find_instance(sol.placement[s],
                                       index.slot_type(s))];
  }
  std::vector<std::uint32_t> link_uses(net.num_links(), 0);
  for (std::size_t l = 0; l <= omega; ++l) {
    const auto [first, last] = index.inter_group_range(l);
    std::set<graph::EdgeId> group_edges;  // charged once per group
    for (std::size_t i = first; i < last; ++i) {
      group_edges.insert(sol.inter_paths[i].edges.begin(),
                         sol.inter_paths[i].edges.end());
    }
    for (graph::EdgeId e : group_edges) ++link_uses[e];
  }
  for (const graph::Path& p : sol.inner_paths) {
    for (graph::EdgeId e : p.edges) ++link_uses[e];
  }

  // ---- Capacity admissibility against residual state ----------------------
  if (!ledger.can_apply(link_uses, instance_uses, prob.flow.rate)) {
    errors.push_back("solution violates a residual capacity constraint");
  }

  // ---- Objective (1), re-accumulated in the Evaluator's term order --------
  const double z = prob.flow.size;
  double vnf = 0.0;
  for (net::InstanceId id = 0; id < instance_uses.size(); ++id) {
    if (instance_uses[id] > 0) {
      vnf += static_cast<double>(instance_uses[id]) * net.instance(id).price *
             z;
    }
  }
  double link = 0.0;
  for (graph::EdgeId e = 0; e < link_uses.size(); ++e) {
    if (link_uses[e] > 0) {
      link += static_cast<double>(link_uses[e]) * net.link_price(e) * z;
    }
  }
  report.recomputed_cost = vnf + link;
  return report;
}

ValidationReport SolutionValidator::check(
    const SolveResult& result, const net::CapacityLedger& ledger) const {
  if (!result.ok()) return ValidationReport{};
  ValidationReport report = check_solution(*result.solution, ledger);
  if (std::bit_cast<std::uint64_t>(result.cost) !=
      std::bit_cast<std::uint64_t>(report.recomputed_cost)) {
    std::ostringstream os;
    os.precision(17);
    os << "reported cost " << result.cost
       << " is not bitwise-equal to the recomputed objective "
       << report.recomputed_cost;
    report.errors.push_back(os.str());
  }
  return report;
}

}  // namespace dagsfc::core
