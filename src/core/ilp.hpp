#pragma once
/// \file ilp.hpp
/// The integer optimization model of §3.3, made executable.
///
/// The paper formulates optimal DAG-SFC embedding as an integer program
/// over placement binaries x_{v,l,γ}, real-path selection binaries
/// (x^a_{b,ρ,l,ε} and y^{a,l,γ}_{b,ρ}) and link/VNF reuse counters α
/// (formulas (1)–(10)). The products of binaries in (5)–(10) make the raw
/// form nonlinear; IlpBuilder produces the standard path-based
/// *linearization*:
///
///   * one placement variable per (slot, candidate host) — constraint (4)
///     becomes Σ_v x[s,v] = 1;
///   * one selection variable per (meta-path, host pair, candidate
///     real-path), where candidate real-paths are the k cheapest loopless
///     paths (Yen) between the pair — the paper's real-path sets P^a_b;
///     each meta-path selects exactly one, and a selection implies both its
///     endpoint placements (the linearized form of (5)/(6));
///   * one binary u[g,e] per (inter-layer group, link) with
///     u[g,e] ≥ sel for every selection whose path crosses e — the
///     min{·,1} multicast discount of (9); inner-layer selections charge
///     links directly, matching (10);
///   * capacity rows implementing constraints (2) and (3).
///
/// The model is an explicit in-memory object: it can be exported as CPLEX
/// LP text for an external MIP solver, and it can *evaluate* an assignment
/// — which the test suite uses to prove that every solution produced by the
/// algorithms in this library is a feasible point of the paper's program
/// with objective value equal to the Evaluator's cost.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/solution.hpp"

namespace dagsfc::core {

using VarId = std::uint32_t;

/// Linear expression Σ coef·var.
struct LinExpr {
  std::vector<std::pair<double, VarId>> terms;

  LinExpr& add(double coef, VarId var) {
    terms.emplace_back(coef, var);
    return *this;
  }
};

enum class Relation { LessEq, GreaterEq, Eq };

struct LinConstraint {
  std::string name;
  LinExpr lhs;
  Relation rel = Relation::LessEq;
  double rhs = 0.0;
};

/// A minimal mixed-binary program container (minimization).
class IlpModel {
 public:
  /// Adds a binary variable; returns its id.
  VarId add_binary(std::string name);

  void add_objective_term(double coef, VarId var);
  void add_constraint(LinConstraint c);

  [[nodiscard]] std::size_t num_variables() const noexcept {
    return names_.size();
  }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }
  [[nodiscard]] const std::string& variable_name(VarId v) const {
    DAGSFC_CHECK(v < names_.size());
    return names_[v];
  }
  [[nodiscard]] const std::vector<LinConstraint>& constraints()
      const noexcept {
    return constraints_;
  }

  /// Objective value of a full assignment (one value per variable).
  [[nodiscard]] double objective_value(
      const std::vector<double>& assignment) const;

  /// Names of constraints the assignment violates (within \p eps).
  [[nodiscard]] std::vector<std::string> violations(
      const std::vector<double>& assignment, double eps = 1e-6) const;

  /// CPLEX LP-format text (Minimize / Subject To / Binary sections).
  [[nodiscard]] std::string to_lp() const;

 private:
  std::vector<std::string> names_;
  LinExpr objective_;
  std::vector<LinConstraint> constraints_;
};

struct IlpOptions {
  /// Candidate real-paths enumerated per (host pair) — the |P^a_b| of the
  /// paper. Larger = tighter relaxation of the path enumeration, bigger
  /// model.
  std::size_t paths_per_pair = 4;
};

/// Builds the linearized §3.3 program for one embedding problem instance.
class IlpBuilder {
 public:
  IlpBuilder(const ModelIndex& index, const net::CapacityLedger& ledger,
             const IlpOptions& opts = {});

  /// Constructs the model. Stable across calls (deterministic ordering).
  [[nodiscard]] IlpModel build();

  /// Translates an EmbeddingSolution into a variable assignment of the last
  /// built model. Returns nullopt when one of the solution's real-paths is
  /// not among the enumerated candidates (raise paths_per_pair).
  [[nodiscard]] std::optional<std::vector<double>> assignment_from(
      const EmbeddingSolution& sol) const;

 private:
  struct Selection {
    VarId var;
    std::size_t meta_index;  ///< into inter or inner path list
    bool inner;
    NodeId from;
    NodeId to;
    graph::Path path;
  };

  [[nodiscard]] std::vector<NodeId> hosts_of(SlotId s) const;
  [[nodiscard]] std::vector<NodeId> endpoint_candidates(
      const SlotRef& ref) const;

  const ModelIndex* index_;
  const net::CapacityLedger* ledger_;
  IlpOptions opts_;

  // Populated by build() for assignment_from().
  std::map<std::pair<SlotId, NodeId>, VarId> placement_vars_;
  std::vector<Selection> selections_;
  std::map<std::pair<std::size_t, graph::EdgeId>, VarId> multicast_vars_;
  std::size_t num_vars_ = 0;
};

}  // namespace dagsfc::core
