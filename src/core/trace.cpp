#include "core/trace.hpp"

#include <sstream>

#include "util/trace.hpp"

namespace dagsfc::core {

TraceCategory category(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::SolveBegin:
    case TraceEventKind::SolveEnd:
      return TraceCategory::Meta;
    case TraceEventKind::LayerEnter:
    case TraceEventKind::ForwardSearch:
    case TraceEventKind::BackwardSearch:
    case TraceEventKind::UncappedRetry:
    case TraceEventKind::CandidateChild:
    case TraceEventKind::ChildrenPruned:
    case TraceEventKind::PoolPruned:
    case TraceEventKind::LayerDone:
    case TraceEventKind::FinalCandidate:
    case TraceEventKind::SlotChoice:
    case TraceEventKind::MetaPathRouted:
    case TraceEventKind::DpLayer:
    case TraceEventKind::LayeredLevel:
    case TraceEventKind::LayeredGadget:
      return TraceCategory::Decision;
    case TraceEventKind::VnfTerm:
    case TraceEventKind::LinkTerm:
      return TraceCategory::Cost;
    case TraceEventKind::PathQueries:
    case TraceEventKind::CacheStats:
      return TraceCategory::Cache;
  }
  return TraceCategory::Meta;  // unreachable
}

const char* kind_name(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::SolveBegin:     return "solve_begin";
    case TraceEventKind::SolveEnd:       return "solve_end";
    case TraceEventKind::LayerEnter:     return "layer_enter";
    case TraceEventKind::ForwardSearch:  return "forward_search";
    case TraceEventKind::BackwardSearch: return "backward_search";
    case TraceEventKind::UncappedRetry:  return "uncapped_retry";
    case TraceEventKind::CandidateChild: return "candidate_child";
    case TraceEventKind::ChildrenPruned: return "children_pruned";
    case TraceEventKind::PoolPruned:     return "pool_pruned";
    case TraceEventKind::LayerDone:      return "layer_done";
    case TraceEventKind::FinalCandidate: return "final_candidate";
    case TraceEventKind::SlotChoice:     return "slot_choice";
    case TraceEventKind::MetaPathRouted: return "meta_path_routed";
    case TraceEventKind::DpLayer:        return "dp_layer";
    case TraceEventKind::LayeredLevel:   return "layered_level";
    case TraceEventKind::LayeredGadget:  return "layered_gadget";
    case TraceEventKind::VnfTerm:        return "vnf_term";
    case TraceEventKind::LinkTerm:       return "link_term";
    case TraceEventKind::PathQueries:    return "path_queries";
    case TraceEventKind::CacheStats:     return "cache_stats";
  }
  return "unknown";  // unreachable
}

namespace {

const char* category_name(TraceCategory c) noexcept {
  switch (c) {
    case TraceCategory::Meta:     return "meta";
    case TraceCategory::Decision: return "decision";
    case TraceCategory::Cost:     return "cost";
    case TraceCategory::Cache:    return "cache";
  }
  return "meta";  // unreachable
}

}  // namespace

TraceCounts& TraceCounts::operator+=(const TraceCounts& o) noexcept {
  decision_events += o.decision_events;
  forward_searches += o.forward_searches;
  backward_searches += o.backward_searches;
  uncapped_retries += o.uncapped_retries;
  candidate_children += o.candidate_children;
  children_dropped += o.children_dropped;
  pool_dropped += o.pool_dropped;
  final_candidates += o.final_candidates;
  vnf_terms += o.vnf_terms;
  link_terms += o.link_terms;
  multicast_shared_uses += o.multicast_shared_uses;
  return *this;
}

void EmbeddingTrace::on_event(const SolveEvent& e) { events_.push_back(e); }

TraceCounts EmbeddingTrace::counts() const {
  TraceCounts c;
  for (const SolveEvent& e : events_) {
    if (category(e.kind) == TraceCategory::Decision) ++c.decision_events;
    switch (e.kind) {
      case TraceEventKind::ForwardSearch:
        ++c.forward_searches;
        break;
      case TraceEventKind::BackwardSearch:
        ++c.backward_searches;
        break;
      case TraceEventKind::UncappedRetry:
        ++c.uncapped_retries;
        break;
      case TraceEventKind::CandidateChild:
        ++c.candidate_children;
        break;
      case TraceEventKind::ChildrenPruned:
        c.children_dropped += static_cast<std::uint64_t>(e.i1 - e.i2);
        break;
      case TraceEventKind::PoolPruned:
        c.pool_dropped += static_cast<std::uint64_t>(e.i1 - e.i2);
        break;
      case TraceEventKind::FinalCandidate:
        ++c.final_candidates;
        break;
      case TraceEventKind::VnfTerm:
        ++c.vnf_terms;
        break;
      case TraceEventKind::LinkTerm:
        ++c.link_terms;
        c.multicast_shared_uses += static_cast<std::uint64_t>(e.i2 - e.i1);
        break;
      default:
        break;
    }
  }
  return c;
}

double EmbeddingTrace::reconstructed_cost() const {
  // Mirror Evaluator::cost_breakdown: sum VNF terms and link terms in their
  // own accumulators (events are emitted in the evaluator's id order), then
  // add the two partial sums. Same values, same order => same bits.
  double vnf = 0.0;
  double link = 0.0;
  for (const SolveEvent& e : events_) {
    if (e.kind == TraceEventKind::VnfTerm) vnf += e.v0;
    if (e.kind == TraceEventKind::LinkTerm) link += e.v0;
  }
  return vnf + link;
}

std::uint64_t EmbeddingTrace::multicast_sharing() const {
  std::uint64_t shared = 0;
  for (const SolveEvent& e : events_) {
    if (e.kind == TraceEventKind::LinkTerm) {
      shared += static_cast<std::uint64_t>(e.i2 - e.i1);
    }
  }
  return shared;
}

std::string EmbeddingTrace::to_chrome_json() const {
  std::vector<util::TraceEvent> out;
  out.reserve(events_.size() + 2);
  std::uint64_t ts = 0;
  for (const SolveEvent& e : events_) {
    util::TraceEvent te;
    te.name = kind_name(e.kind);
    te.cat = category_name(category(e.kind));
    te.ts = ++ts;  // logical clock: 1-based emission index
    te.tid = 0;    // solves are single-threaded; pin for byte stability
    switch (e.kind) {
      case TraceEventKind::SolveBegin:
      case TraceEventKind::LayerEnter:
        te.phase = 'B';
        break;
      case TraceEventKind::SolveEnd:
      case TraceEventKind::LayerDone:
        te.phase = 'E';
        break;
      default:
        te.phase = 'i';
        break;
    }
    te.num_args.emplace_back("i0", static_cast<double>(e.i0));
    te.num_args.emplace_back("i1", static_cast<double>(e.i1));
    te.num_args.emplace_back("i2", static_cast<double>(e.i2));
    te.num_args.emplace_back("v0", e.v0);
    te.num_args.emplace_back("v1", e.v1);
    if (!e.s0.empty()) te.str_args.emplace_back("s0", e.s0);
    out.push_back(std::move(te));
  }
  return util::to_chrome_trace(out, /*pid=*/0);
}

std::string EmbeddingTrace::summary() const {
  const TraceCounts c = counts();
  std::string algorithm = "?";
  bool ok = false;
  double cost = 0.0;
  std::string failure;
  for (const SolveEvent& e : events_) {
    if (e.kind == TraceEventKind::SolveBegin) algorithm = e.s0;
    if (e.kind == TraceEventKind::SolveEnd) {
      ok = e.i0 != 0;
      cost = e.v0;
      failure = e.s0;
    }
  }
  std::ostringstream os;
  os << "solve " << algorithm << ": "
     << (ok ? "ok" : ("FAILED (" + failure + ")")) << "\n";
  if (ok) {
    os << "  cost " << cost << " (reconstructed " << reconstructed_cost()
       << ")\n";
  }
  os << "  events " << events_.size() << " (decision " << c.decision_events
     << ", vnf terms " << c.vnf_terms << ", link terms " << c.link_terms
     << ")\n";
  os << "  search: forward " << c.forward_searches << ", backward "
     << c.backward_searches << ", uncapped retries " << c.uncapped_retries
     << ", children " << c.candidate_children << " (dropped "
     << c.children_dropped << " by X_d, " << c.pool_dropped
     << " by max_pool), final candidates " << c.final_candidates << "\n";
  os << "  multicast link-charges saved: " << c.multicast_shared_uses << "\n";
  return os.str();
}

}  // namespace dagsfc::core
