#include "core/baselines.hpp"

#include <algorithm>

#include "core/path_oracle.hpp"
#include "graph/dijkstra.hpp"
#include "util/trace.hpp"

namespace dagsfc::core {

namespace {

graph::Path trivial_path(NodeId v) {
  graph::Path p;
  p.nodes.push_back(v);
  return p;
}

/// Shared skeleton of RANV/MINV: a per-slot node chooser plus Dijkstra
/// meta-path instantiation and a final feasibility check.
SolveResult assign_then_route(
    const ModelIndex& index, const net::CapacityLedger& ledger,
    TraceSink* trace, graph::SearchWorkspace* workspace,
    const std::function<NodeId(VnfTypeId, const std::vector<NodeId>&)>&
        choose) {
  const Tracer tr(trace);
  const EmbeddingProblem& prob = index.problem();
  const net::Network& net = prob.net();
  const graph::Graph& g = net.topology();
  const double rate = prob.flow.rate;

  SolveResult result;
  EmbeddingSolution sol;
  sol.placement.assign(index.num_slots(), graph::kInvalidNode);

  DAGSFC_TRACE_SCOPE("baselines/assign_then_route");

  // Working copy so repeated uses of one instance respect its capacity.
  net::CapacityLedger working(ledger);
  for (SlotId s = 0; s < index.num_slots(); ++s) {
    const VnfTypeId t = index.slot_type(s);
    std::vector<NodeId> candidates;
    for (NodeId v : net.nodes_with(t)) {
      if (working.node_offers(v, t, rate)) candidates.push_back(v);
    }
    std::sort(candidates.begin(), candidates.end());
    if (candidates.empty()) {
      result.failure_reason = "no node with remaining capacity hosts " +
                              net.catalog().name(t);
      return result;
    }
    const NodeId v = choose(t, candidates);
    if (tr) {
      SolveEvent e;
      e.kind = TraceEventKind::SlotChoice;
      e.i0 = static_cast<std::int64_t>(s);
      e.i1 = static_cast<std::int64_t>(v);
      e.i2 = static_cast<std::int64_t>(candidates.size());
      e.v0 = net.instance(*net.find_instance(v, t)).price;
      tr(e);
    }
    sol.placement[s] = v;
    working.consume_instance(*net.find_instance(v, t), rate);
  }

  // Meta-paths by minimum-cost path over links that can carry the flow.
  // The residual network is fixed for the whole routing phase (the oracle
  // only reads the ledger), so consecutive meta-paths leaving the same node
  // — common, since a parallel block's branch paths all leave the preceding
  // VNF's host — share one multi-target search via min_cost_paths(). Each
  // returned path is bit-identical to the per-path query it replaces, and
  // failure still reports at the first unroutable meta-path in input order.
  PathOracle oracle(g, ledger, rate, workspace);
  auto record_counters = [&]() { result.path_queries = oracle.counters(); };
  Evaluator evaluator(index);
  auto routed_event = [&](bool inner, std::size_t i, const graph::Path& p) {
    if (!tr) return;
    SolveEvent e;
    e.kind = TraceEventKind::MetaPathRouted;
    e.i0 = inner ? 1 : 0;
    e.i1 = static_cast<std::int64_t>(i);
    e.i2 = static_cast<std::int64_t>(p.length());
    e.v0 = p.cost;
    tr(e);
  };
  std::vector<NodeId> targets;
  auto route_all = [&](const std::vector<MetaPathDesc>& descs, bool inner,
                       std::vector<graph::Path>& out,
                       const char* fail_reason) -> bool {
    std::size_t i = 0;
    while (i < descs.size()) {
      const NodeId a = evaluator.resolve(descs[i].from, sol);
      std::size_t j = i;
      targets.clear();
      while (j < descs.size() &&
             evaluator.resolve(descs[j].from, sol) == a) {
        const NodeId b = evaluator.resolve(descs[j].to, sol);
        if (b != a) targets.push_back(b);
        ++j;
      }
      auto found = targets.empty()
                       ? std::vector<std::optional<graph::Path>>{}
                       : oracle.min_cost_paths(a, targets);
      std::size_t t = 0;
      for (std::size_t idx = i; idx < j; ++idx) {
        const NodeId b = evaluator.resolve(descs[idx].to, sol);
        std::optional<graph::Path> p =
            b == a ? std::optional<graph::Path>(trivial_path(a))
                   : std::move(found[t++]);
        if (!p) {
          result.failure_reason = fail_reason;
          record_counters();
          return false;
        }
        routed_event(inner, idx, *p);
        out.push_back(std::move(*p));
      }
      i = j;
    }
    return true;
  };
  if (!route_all(index.inter_paths(), false, sol.inter_paths,
                 "no usable route for an inter-layer meta-path")) {
    return result;
  }
  if (!route_all(index.inner_paths(), true, sol.inner_paths,
                 "no usable route for an inner-layer meta-path")) {
    return result;
  }
  record_counters();

  DAGSFC_ASSERT(evaluator.validate(sol).empty());
  const ResourceUsage u = evaluator.usage(sol);
  if (!evaluator.feasible(u, ledger)) {
    result.failure_reason = "assignment exceeds link or VNF capacity";
    return result;
  }
  result.cost = evaluator.cost(u);
  result.solution = std::move(sol);
  result.candidate_solutions = 1;
  return result;
}

}  // namespace

SolveResult RanvEmbedder::do_solve(const ModelIndex& index,
                                   const net::CapacityLedger& ledger,
                                   Rng& rng, TraceSink* trace,
                                   graph::SearchWorkspace* workspace) const {
  return assign_then_route(
      index, ledger, trace, workspace,
      [&rng](VnfTypeId, const std::vector<NodeId>& candidates) {
        return candidates[rng.index(candidates.size())];
      });
}

SolveResult MinvEmbedder::do_solve(const ModelIndex& index,
                                   const net::CapacityLedger& ledger,
                                   Rng& /*rng*/, TraceSink* trace,
                                   graph::SearchWorkspace* workspace) const {
  const net::Network& net = index.problem().net();
  return assign_then_route(
      index, ledger, trace, workspace,
      [&net](VnfTypeId t, const std::vector<NodeId>& candidates) {
        NodeId best = candidates.front();
        double best_price = graph::kInfCost;
        for (NodeId v : candidates) {
          const double p = net.instance(*net.find_instance(v, t)).price;
          if (p < best_price) {  // ties: lowest node id (candidates sorted)
            best_price = p;
            best = v;
          }
        }
        return best;
      });
}

}  // namespace dagsfc::core
