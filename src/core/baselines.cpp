#include "core/baselines.hpp"

#include <algorithm>

#include "core/path_oracle.hpp"
#include "graph/dijkstra.hpp"
#include "util/trace.hpp"

namespace dagsfc::core {

namespace {

graph::Path trivial_path(NodeId v) {
  graph::Path p;
  p.nodes.push_back(v);
  return p;
}

/// Shared skeleton of RANV/MINV: a per-slot node chooser plus Dijkstra
/// meta-path instantiation and a final feasibility check.
SolveResult assign_then_route(
    const ModelIndex& index, const net::CapacityLedger& ledger,
    TraceSink* trace, graph::SearchWorkspace* workspace,
    const std::function<NodeId(VnfTypeId, const std::vector<NodeId>&)>&
        choose) {
  const Tracer tr(trace);
  const EmbeddingProblem& prob = index.problem();
  const net::Network& net = prob.net();
  const graph::Graph& g = net.topology();
  const double rate = prob.flow.rate;

  SolveResult result;
  EmbeddingSolution sol;
  sol.placement.assign(index.num_slots(), graph::kInvalidNode);

  DAGSFC_TRACE_SCOPE("baselines/assign_then_route");

  // Working copy so repeated uses of one instance respect its capacity.
  net::CapacityLedger working(ledger);
  for (SlotId s = 0; s < index.num_slots(); ++s) {
    const VnfTypeId t = index.slot_type(s);
    std::vector<NodeId> candidates;
    for (NodeId v : net.nodes_with(t)) {
      if (working.node_offers(v, t, rate)) candidates.push_back(v);
    }
    std::sort(candidates.begin(), candidates.end());
    if (candidates.empty()) {
      result.failure_reason = "no node with remaining capacity hosts " +
                              net.catalog().name(t);
      return result;
    }
    const NodeId v = choose(t, candidates);
    if (tr) {
      SolveEvent e;
      e.kind = TraceEventKind::SlotChoice;
      e.i0 = static_cast<std::int64_t>(s);
      e.i1 = static_cast<std::int64_t>(v);
      e.i2 = static_cast<std::int64_t>(candidates.size());
      e.v0 = net.instance(*net.find_instance(v, t)).price;
      tr(e);
    }
    sol.placement[s] = v;
    working.consume_instance(*net.find_instance(v, t), rate);
  }

  // Meta-paths by minimum-cost path over links that can carry the flow.
  PathOracle oracle(g, ledger, rate, workspace);
  auto record_counters = [&]() { result.path_queries = oracle.counters(); };
  Evaluator evaluator(index);
  auto instantiate = [&](const MetaPathDesc& d) -> std::optional<graph::Path> {
    const NodeId a = evaluator.resolve(d.from, sol);
    const NodeId b = evaluator.resolve(d.to, sol);
    if (a == b) return trivial_path(a);
    return oracle.min_cost_path(a, b);
  };
  auto routed_event = [&](bool inner, std::size_t i, const graph::Path& p) {
    if (!tr) return;
    SolveEvent e;
    e.kind = TraceEventKind::MetaPathRouted;
    e.i0 = inner ? 1 : 0;
    e.i1 = static_cast<std::int64_t>(i);
    e.i2 = static_cast<std::int64_t>(p.length());
    e.v0 = p.cost;
    tr(e);
  };
  for (std::size_t i = 0; i < index.inter_paths().size(); ++i) {
    auto p = instantiate(index.inter_paths()[i]);
    if (!p) {
      result.failure_reason = "no usable route for an inter-layer meta-path";
      record_counters();
      return result;
    }
    routed_event(false, i, *p);
    sol.inter_paths.push_back(std::move(*p));
  }
  for (std::size_t i = 0; i < index.inner_paths().size(); ++i) {
    auto p = instantiate(index.inner_paths()[i]);
    if (!p) {
      result.failure_reason = "no usable route for an inner-layer meta-path";
      record_counters();
      return result;
    }
    routed_event(true, i, *p);
    sol.inner_paths.push_back(std::move(*p));
  }
  record_counters();

  DAGSFC_ASSERT(evaluator.validate(sol).empty());
  const ResourceUsage u = evaluator.usage(sol);
  if (!evaluator.feasible(u, ledger)) {
    result.failure_reason = "assignment exceeds link or VNF capacity";
    return result;
  }
  result.cost = evaluator.cost(u);
  result.solution = std::move(sol);
  result.candidate_solutions = 1;
  return result;
}

}  // namespace

SolveResult RanvEmbedder::do_solve(const ModelIndex& index,
                                   const net::CapacityLedger& ledger,
                                   Rng& rng, TraceSink* trace,
                                   graph::SearchWorkspace* workspace) const {
  return assign_then_route(
      index, ledger, trace, workspace,
      [&rng](VnfTypeId, const std::vector<NodeId>& candidates) {
        return candidates[rng.index(candidates.size())];
      });
}

SolveResult MinvEmbedder::do_solve(const ModelIndex& index,
                                   const net::CapacityLedger& ledger,
                                   Rng& /*rng*/, TraceSink* trace,
                                   graph::SearchWorkspace* workspace) const {
  const net::Network& net = index.problem().net();
  return assign_then_route(
      index, ledger, trace, workspace,
      [&net](VnfTypeId t, const std::vector<NodeId>& candidates) {
        NodeId best = candidates.front();
        double best_price = graph::kInfCost;
        for (NodeId v : candidates) {
          const double p = net.instance(*net.find_instance(v, t)).price;
          if (p < best_price) {  // ties: lowest node id (candidates sorted)
            best_price = p;
            best = v;
          }
        }
        return best;
      });
}

}  // namespace dagsfc::core
