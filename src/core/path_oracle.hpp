#pragma once
/// \file path_oracle.hpp
/// The one gateway through which embedders ask shortest-path questions.
///
/// A PathOracle binds the topology, the residual ledger and the flow rate,
/// exposes the residual-capacity edge filter every solver uses, and routes
/// each query through the ledger's graph::PathCache when one is enabled —
/// falling back to direct computation otherwise. Either way it tallies
/// graph::PathQueryCounters, which the embedders surface on SolveResult.
///
/// Under the flat search layer (the default) the oracle also owns the
/// per-solve machinery the kernels want: a SearchWorkspace (caller-supplied
/// so a worker thread can reuse one across solves, or embedded as a
/// fallback) and an epoch-keyed usable-edge mask — link_can_carry is
/// re-evaluated per edge only when the ledger epoch moves, not per probe.
/// set_flat_search_default(false) routes every query through the preserved
/// seed implementations instead (sampled at construction, like the ledger's
/// cache default).
///
/// Cached and uncached answers are bit-identical by construction: a cached
/// point-to-point path is read out of the full Dijkstra tree, whose parent
/// chain for any target equals the early-exit run's (targets are finalized
/// when popped; later relaxations cannot improve them), and cached Yen
/// results are the same deterministic k_shortest_paths() output. Flat and
/// reference answers are bit-identical too — tests/test_search_flat.cpp
/// holds every embedder to that.

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/path_cache.hpp"
#include "graph/steiner.hpp"
#include "graph/workspace.hpp"
#include "graph/yen.hpp"
#include "net/ledger.hpp"

namespace dagsfc::core {

using graph::NodeId;

class PathOracle {
 public:
  /// \p ws lets the caller lend a long-lived workspace (per worker thread);
  /// when null the oracle uses an embedded one, so warm reuse then spans one
  /// solve instead of many.
  explicit PathOracle(const graph::Graph& g, const net::CapacityLedger& ledger,
                      double rate, graph::SearchWorkspace* ws = nullptr)
      : g_(&g),
        ledger_(&ledger),
        rate_(rate),
        usable_([this](graph::EdgeId e) {
          return ledger_->link_can_carry(e, rate_);
        }),
        ws_(ws != nullptr ? ws : &own_ws_),
        flat_(graph::flat_search_default()) {}

  PathOracle(const PathOracle&) = delete;
  PathOracle& operator=(const PathOracle&) = delete;

  /// Links that can carry the flow rate on the residual network — the
  /// filter formerly rebuilt by every solver.
  [[nodiscard]] const graph::EdgeFilter& usable() const noexcept {
    return usable_;
  }

  /// The workspace queries run through — for callers (ring searches) that
  /// share the oracle's buffers.
  [[nodiscard]] graph::SearchWorkspace& workspace() noexcept { return *ws_; }

  /// Min-cost tree from \p source over usable links.
  [[nodiscard]] std::shared_ptr<const graph::ShortestPathTree> tree(
      NodeId source);

  /// Min-cost path a → b over usable links; nullopt when unreachable.
  [[nodiscard]] std::optional<graph::Path> min_cost_path(NodeId a, NodeId b);

  /// Batched: min-cost paths a → targets[i], element i of the result
  /// matching target i (nullopt where unreachable). Bit-identical to
  /// calling min_cost_path per target — with a cache it reads one tree,
  /// without one it runs a single multi-target pass (dijkstra_into_targets)
  /// whose settled parents equal each early-exit run's. The baselines route
  /// all meta-paths sharing a source through this.
  [[nodiscard]] std::vector<std::optional<graph::Path>> min_cost_paths(
      NodeId a, std::span<const NodeId> targets);

  /// Yen's k cheapest paths a → b over usable links.
  [[nodiscard]] std::vector<graph::Path> k_shortest(NodeId a, NodeId b,
                                                    std::size_t k);

  /// Yen under a caller-supplied filter (e.g. restricted to a search-tree
  /// node set). Never cached — the filter's identity is not keyable — but
  /// still counted.
  [[nodiscard]] std::vector<graph::Path> k_shortest_filtered(
      NodeId a, NodeId b, std::size_t k, const graph::EdgeFilter& filter);

  /// Minimum Steiner tree over usable links (exact solver's multicast
  /// pricing). Counted in PathQueryCounters::steiner_calls.
  [[nodiscard]] std::optional<graph::SteinerTree> steiner(
      const std::vector<NodeId>& terminals);

  /// Tallies one BFS ring search run by the caller through workspace() —
  /// the backtracking engine's forward/backward expansions, which don't
  /// route through the oracle's query methods but should still show up in
  /// the solver's path-work accounting.
  void note_bfs() noexcept { ++counters_.bfs_calls; }

  [[nodiscard]] const graph::PathQueryCounters& counters() const noexcept {
    return counters_;
  }

 private:
  /// Everything usable() depends on besides the ledger epoch, folded into
  /// the cache key so e.g. flows of different rates never share entries.
  [[nodiscard]] std::uint64_t context() const noexcept {
    return std::bit_cast<std::uint64_t>(rate_);
  }

  /// The usable-links mask, rebuilt from link_can_carry only when the
  /// ledger epoch has moved since the last query. Flat mode only.
  [[nodiscard]] const graph::EdgeMask* usable_mask();

  /// usable_mask(), except it returns nullptr when no edge is currently
  /// masked out — the kernels then skip the per-arc bit test, and (more
  /// importantly) a goal-directed query may seed its landmark upper bound,
  /// which is only valid unmasked. Same admissible edge set either way.
  [[nodiscard]] const graph::EdgeMask* effective_mask();

  /// The attached DistanceOracle if it may prune queries on g_ right now
  /// (matches() gate: same graph, active, revisions current); null
  /// otherwise. Stale or absent oracles degrade to unpruned searches.
  [[nodiscard]] const graph::DistanceOracle* pruning_oracle() const;

  const graph::Graph* g_;
  const net::CapacityLedger* ledger_;
  double rate_;
  graph::EdgeFilter usable_;
  graph::PathQueryCounters counters_;

  graph::SearchWorkspace own_ws_;
  graph::SearchWorkspace* ws_;
  const bool flat_;

  graph::EdgeMaskBuffer usable_mask_;
  graph::EdgeMask usable_view_;
  std::uint64_t mask_epoch_ = 0;
  bool mask_ready_ = false;
  bool mask_full_ = false;  // no cleared bits in the current usable mask
  graph::EdgeMaskBuffer filtered_mask_;  // k_shortest_filtered scratch
};

}  // namespace dagsfc::core
