#pragma once
/// \file path_oracle.hpp
/// The one gateway through which embedders ask shortest-path questions.
///
/// A PathOracle binds the topology, the residual ledger and the flow rate,
/// exposes the residual-capacity edge filter every solver uses, and routes
/// each query through the ledger's graph::PathCache when one is enabled —
/// falling back to direct computation otherwise. Either way it tallies
/// graph::PathQueryCounters, which the embedders surface on SolveResult.
///
/// Cached and uncached answers are bit-identical by construction: a cached
/// point-to-point path is read out of the full Dijkstra tree, whose parent
/// chain for any target equals the early-exit run's (targets are finalized
/// when popped; later relaxations cannot improve them), and cached Yen
/// results are the same deterministic k_shortest_paths() output.

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "graph/dijkstra.hpp"
#include "graph/path_cache.hpp"
#include "graph/yen.hpp"
#include "net/ledger.hpp"

namespace dagsfc::core {

using graph::NodeId;

class PathOracle {
 public:
  PathOracle(const graph::Graph& g, const net::CapacityLedger& ledger,
             double rate)
      : g_(&g),
        ledger_(&ledger),
        rate_(rate),
        usable_([this](graph::EdgeId e) {
          return ledger_->link_can_carry(e, rate_);
        }) {}

  PathOracle(const PathOracle&) = delete;
  PathOracle& operator=(const PathOracle&) = delete;

  /// Links that can carry the flow rate on the residual network — the
  /// filter formerly rebuilt by every solver.
  [[nodiscard]] const graph::EdgeFilter& usable() const noexcept {
    return usable_;
  }

  /// Min-cost tree from \p source over usable links.
  [[nodiscard]] std::shared_ptr<const graph::ShortestPathTree> tree(
      NodeId source) {
    if (auto* cache = ledger_->path_cache()) {
      return cache->tree(*g_, source, ledger_->epoch(), context(), usable_,
                         counters_);
    }
    ++counters_.dijkstra_calls;
    return std::make_shared<const graph::ShortestPathTree>(
        graph::dijkstra(*g_, source, usable_));
  }

  /// Min-cost path a → b over usable links; nullopt when unreachable.
  [[nodiscard]] std::optional<graph::Path> min_cost_path(NodeId a, NodeId b) {
    if (ledger_->path_cache()) return tree(a)->path_to(b);
    ++counters_.dijkstra_calls;
    return graph::min_cost_path(*g_, a, b, usable_);
  }

  /// Yen's k cheapest paths a → b over usable links.
  [[nodiscard]] std::vector<graph::Path> k_shortest(NodeId a, NodeId b,
                                                    std::size_t k) {
    if (auto* cache = ledger_->path_cache()) {
      return *cache->k_paths(*g_, a, b, k, ledger_->epoch(), context(),
                             usable_, counters_);
    }
    ++counters_.yen_calls;
    return graph::k_shortest_paths(*g_, a, b, k, usable_);
  }

  /// Yen under a caller-supplied filter (e.g. restricted to a search-tree
  /// node set). Never cached — the filter's identity is not keyable — but
  /// still counted.
  [[nodiscard]] std::vector<graph::Path> k_shortest_filtered(
      NodeId a, NodeId b, std::size_t k, const graph::EdgeFilter& filter) {
    ++counters_.yen_calls;
    return graph::k_shortest_paths(*g_, a, b, k, filter);
  }

  [[nodiscard]] const graph::PathQueryCounters& counters() const noexcept {
    return counters_;
  }

 private:
  /// Everything usable() depends on besides the ledger epoch, folded into
  /// the cache key so e.g. flows of different rates never share entries.
  [[nodiscard]] std::uint64_t context() const noexcept {
    return std::bit_cast<std::uint64_t>(rate_);
  }

  const graph::Graph* g_;
  const net::CapacityLedger* ledger_;
  double rate_;
  graph::EdgeFilter usable_;
  graph::PathQueryCounters counters_;
};

}  // namespace dagsfc::core
