#include "core/ilp.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "graph/yen.hpp"

namespace dagsfc::core {

VarId IlpModel::add_binary(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<VarId>(names_.size() - 1);
}

void IlpModel::add_objective_term(double coef, VarId var) {
  DAGSFC_CHECK(var < names_.size());
  objective_.add(coef, var);
}

void IlpModel::add_constraint(LinConstraint c) {
  for (const auto& [coef, var] : c.lhs.terms) {
    (void)coef;
    DAGSFC_CHECK(var < names_.size());
  }
  constraints_.push_back(std::move(c));
}

namespace {
double eval(const LinExpr& e, const std::vector<double>& x) {
  double total = 0.0;
  for (const auto& [coef, var] : e.terms) total += coef * x[var];
  return total;
}
}  // namespace

double IlpModel::objective_value(const std::vector<double>& x) const {
  DAGSFC_CHECK_MSG(x.size() == names_.size(), "assignment size mismatch");
  return eval(objective_, x);
}

std::vector<std::string> IlpModel::violations(const std::vector<double>& x,
                                              double eps) const {
  DAGSFC_CHECK_MSG(x.size() == names_.size(), "assignment size mismatch");
  std::vector<std::string> out;
  for (const LinConstraint& c : constraints_) {
    const double lhs = eval(c.lhs, x);
    const bool ok = c.rel == Relation::LessEq      ? lhs <= c.rhs + eps
                    : c.rel == Relation::GreaterEq ? lhs >= c.rhs - eps
                                                   : std::abs(lhs - c.rhs) <= eps;
    if (!ok) {
      std::ostringstream os;
      os << c.name << ": lhs=" << lhs << " rhs=" << c.rhs;
      out.push_back(os.str());
    }
  }
  return out;
}

std::string IlpModel::to_lp() const {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "Minimize\n obj:";
  for (std::size_t i = 0; i < objective_.terms.size(); ++i) {
    const auto& [coef, var] = objective_.terms[i];
    os << (coef >= 0 && i > 0 ? " + " : " ") << coef << ' ' << names_[var];
  }
  os << "\nSubject To\n";
  for (const LinConstraint& c : constraints_) {
    os << ' ' << c.name << ':';
    for (std::size_t i = 0; i < c.lhs.terms.size(); ++i) {
      const auto& [coef, var] = c.lhs.terms[i];
      os << (coef >= 0 && i > 0 ? " + " : " ") << coef << ' ' << names_[var];
    }
    switch (c.rel) {
      case Relation::LessEq:
        os << " <= ";
        break;
      case Relation::GreaterEq:
        os << " >= ";
        break;
      case Relation::Eq:
        os << " = ";
        break;
    }
    os << c.rhs << '\n';
  }
  os << "Binary\n";
  for (const std::string& n : names_) os << ' ' << n;
  os << "\nEnd\n";
  return os.str();
}

// ---------------------------------------------------------------------------

IlpBuilder::IlpBuilder(const ModelIndex& index,
                       const net::CapacityLedger& ledger,
                       const IlpOptions& opts)
    : index_(&index), ledger_(&ledger), opts_(opts) {
  DAGSFC_CHECK(opts.paths_per_pair >= 1);
}

std::vector<NodeId> IlpBuilder::hosts_of(SlotId s) const {
  const net::Network& net = index_->problem().net();
  const double rate = index_->problem().flow.rate;
  std::vector<NodeId> out;
  for (NodeId v : net.nodes_with(index_->slot_type(s))) {
    if (ledger_->node_offers(v, index_->slot_type(s), rate)) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> IlpBuilder::endpoint_candidates(const SlotRef& ref) const {
  switch (ref.kind) {
    case SlotRef::Kind::Source:
      return {index_->problem().flow.source};
    case SlotRef::Kind::Destination:
      return {index_->problem().flow.destination};
    case SlotRef::Kind::Slot:
      return hosts_of(ref.slot);
  }
  return {};
}

IlpModel IlpBuilder::build() {
  placement_vars_.clear();
  selections_.clear();
  multicast_vars_.clear();

  const EmbeddingProblem& prob = index_->problem();
  const net::Network& net = prob.net();
  const graph::Graph& g = net.topology();
  const double z = prob.flow.size;
  const double rate = prob.flow.rate;

  IlpModel model;

  // Placement variables + objective VNF rental term (formula (7) expanded).
  for (SlotId s = 0; s < index_->num_slots(); ++s) {
    for (NodeId v : hosts_of(s)) {
      const VarId var =
          model.add_binary("x_s" + std::to_string(s) + "_n" +
                           std::to_string(v));
      placement_vars_[{s, v}] = var;
      const double price =
          net.instance(*net.find_instance(v, index_->slot_type(s))).price;
      model.add_objective_term(price * z, var);
    }
    // Constraint (4): each slot placed exactly once.
    LinConstraint c;
    c.name = "assign_s" + std::to_string(s);
    c.rel = Relation::Eq;
    c.rhs = 1.0;
    for (NodeId v : hosts_of(s)) c.lhs.add(1.0, placement_vars_[{s, v}]);
    model.add_constraint(std::move(c));
  }

  const graph::EdgeFilter usable = [&](graph::EdgeId e) {
    return ledger_->link_can_carry(e, rate);
  };

  // Selection variables per meta-path (linearized (5)/(6)).
  auto build_selections = [&](const std::vector<MetaPathDesc>& metas,
                              bool inner) {
    for (std::size_t m = 0; m < metas.size(); ++m) {
      const MetaPathDesc& d = metas[m];
      const std::string tag = (inner ? "y_m" : "x_m") + std::to_string(m);
      LinConstraint pick;
      pick.name = (inner ? "inner_m" : "inter_m") + std::to_string(m);
      pick.rel = Relation::Eq;
      pick.rhs = 1.0;
      for (NodeId a : endpoint_candidates(d.from)) {
        for (NodeId b : endpoint_candidates(d.to)) {
          std::vector<graph::Path> paths;
          if (a == b) {
            graph::Path trivial;
            trivial.nodes.push_back(a);
            paths.push_back(std::move(trivial));
          } else {
            paths = graph::k_shortest_paths(g, a, b, opts_.paths_per_pair,
                                            usable);
          }
          for (std::size_t rho = 0; rho < paths.size(); ++rho) {
            const VarId var = model.add_binary(
                tag + "_a" + std::to_string(a) + "_b" + std::to_string(b) +
                "_p" + std::to_string(rho));
            pick.lhs.add(1.0, var);
            // Selection implies both endpoint placements.
            if (d.from.kind == SlotRef::Kind::Slot) {
              LinConstraint c;
              c.name = tag + "_from_a" + std::to_string(a) + "_p" +
                       std::to_string(rho);
              c.rel = Relation::LessEq;
              c.rhs = 0.0;
              c.lhs.add(1.0, var).add(-1.0,
                                      placement_vars_.at({d.from.slot, a}));
              model.add_constraint(std::move(c));
            }
            if (d.to.kind == SlotRef::Kind::Slot) {
              LinConstraint c;
              c.name = tag + "_to_b" + std::to_string(b) + "_p" +
                       std::to_string(rho);
              c.rel = Relation::LessEq;
              c.rhs = 0.0;
              c.lhs.add(1.0, var).add(-1.0,
                                      placement_vars_.at({d.to.slot, b}));
              model.add_constraint(std::move(c));
            }
            selections_.push_back(Selection{var, m, inner, a, b,
                                            std::move(paths[rho])});
          }
        }
      }
      DAGSFC_CHECK_MSG(!pick.lhs.terms.empty(),
                       "a meta-path has no candidate real-path");
      model.add_constraint(std::move(pick));
    }
  };
  build_selections(index_->inter_paths(), /*inner=*/false);
  build_selections(index_->inner_paths(), /*inner=*/true);

  // Multicast link binaries per inter-layer group (formula (9)'s min{·,1}):
  // u[g,e] ≥ every inter selection in group g whose real-path crosses e.
  for (std::size_t grp = 0; grp < index_->num_inter_groups(); ++grp) {
    const auto [first, last] = index_->inter_group_range(grp);
    for (const Selection& sel : selections_) {
      if (sel.inner || sel.meta_index < first || sel.meta_index >= last) {
        continue;
      }
      for (graph::EdgeId e : sel.path.edges) {
        auto it = multicast_vars_.find({grp, e});
        if (it == multicast_vars_.end()) {
          const VarId u = model.add_binary("u_g" + std::to_string(grp) +
                                           "_e" + std::to_string(e));
          it = multicast_vars_.emplace(std::pair{grp, e}, u).first;
          model.add_objective_term(net.link_price(e) * z, u);
        }
        LinConstraint c;
        c.name = "mcast_g" + std::to_string(grp) + "_e" + std::to_string(e) +
                 "_v" + std::to_string(sel.var);
        c.rel = Relation::GreaterEq;
        c.rhs = 0.0;
        c.lhs.add(1.0, it->second).add(-1.0, sel.var);
        model.add_constraint(std::move(c));
      }
    }
  }

  // Inner-layer selections pay per path (formula (10)).
  for (const Selection& sel : selections_) {
    if (!sel.inner) continue;
    double path_price = 0.0;
    for (graph::EdgeId e : sel.path.edges) path_price += net.link_price(e);
    if (path_price > 0.0) {
      model.add_objective_term(path_price * z, sel.var);
    }
  }

  // Constraint (2): per instance, uses·R ≤ residual capability.
  for (net::InstanceId id = 0; id < net.num_instances(); ++id) {
    const net::VnfInstance& inst = net.instance(id);
    LinConstraint c;
    c.name = "vnfcap_i" + std::to_string(id);
    c.rel = Relation::LessEq;
    c.rhs = ledger_->instance_residual(id);
    for (SlotId s = 0; s < index_->num_slots(); ++s) {
      if (index_->slot_type(s) != inst.type) continue;
      const auto it = placement_vars_.find({s, inst.node});
      if (it != placement_vars_.end()) c.lhs.add(rate, it->second);
    }
    if (!c.lhs.terms.empty()) model.add_constraint(std::move(c));
  }

  // Constraint (3): per link, (multicast uses + inner uses)·R ≤ residual.
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    LinConstraint c;
    c.name = "linkcap_e" + std::to_string(e);
    c.rel = Relation::LessEq;
    c.rhs = ledger_->link_residual(e);
    for (std::size_t grp = 0; grp < index_->num_inter_groups(); ++grp) {
      const auto it = multicast_vars_.find({grp, e});
      if (it != multicast_vars_.end()) c.lhs.add(rate, it->second);
    }
    for (const Selection& sel : selections_) {
      if (!sel.inner) continue;
      const auto uses = static_cast<double>(
          std::count(sel.path.edges.begin(), sel.path.edges.end(), e));
      if (uses > 0) c.lhs.add(rate * uses, sel.var);
    }
    if (!c.lhs.terms.empty()) model.add_constraint(std::move(c));
  }

  num_vars_ = model.num_variables();
  return model;
}

std::optional<std::vector<double>> IlpBuilder::assignment_from(
    const EmbeddingSolution& sol) const {
  DAGSFC_CHECK_MSG(num_vars_ > 0, "call build() first");
  std::vector<double> x(num_vars_, 0.0);

  for (SlotId s = 0; s < index_->num_slots(); ++s) {
    const auto it = placement_vars_.find({s, sol.placement[s]});
    if (it == placement_vars_.end()) return std::nullopt;
    x[it->second] = 1.0;
  }

  const Evaluator ev(*index_);
  auto select = [&](const std::vector<MetaPathDesc>& metas,
                    const std::vector<graph::Path>& paths,
                    bool inner) -> bool {
    for (std::size_t m = 0; m < metas.size(); ++m) {
      const NodeId a = ev.resolve(metas[m].from, sol);
      const NodeId b = ev.resolve(metas[m].to, sol);
      bool found = false;
      for (const Selection& sel : selections_) {
        if (sel.inner != inner || sel.meta_index != m) continue;
        if (sel.from != a || sel.to != b) continue;
        if (sel.path.nodes != paths[m].nodes) continue;
        x[sel.var] = 1.0;
        found = true;
        break;
      }
      if (!found) return false;
    }
    return true;
  };
  if (!select(index_->inter_paths(), sol.inter_paths, false)) {
    return std::nullopt;
  }
  if (!select(index_->inner_paths(), sol.inner_paths, true)) {
    return std::nullopt;
  }

  // Multicast binaries: u[g,e] = 1 iff any chosen inter selection of group g
  // crosses e.
  for (const Selection& sel : selections_) {
    if (sel.inner || x[sel.var] != 1.0) continue;
    std::size_t grp = 0;
    while (!(sel.meta_index >= index_->inter_group_range(grp).first &&
             sel.meta_index < index_->inter_group_range(grp).second)) {
      ++grp;
    }
    for (graph::EdgeId e : sel.path.edges) {
      x[multicast_vars_.at({grp, e})] = 1.0;
    }
  }
  return x;
}

}  // namespace dagsfc::core
