#include "core/search_tree.hpp"

#include <algorithm>

namespace dagsfc::core {

SearchTree SearchTree::from_expander(const graph::RingExpander& expander) {
  SearchTree t;
  const auto& visited = expander.visited();
  DAGSFC_CHECK(!visited.empty());

  // Discovery order keeps rings contiguous: the expander appends each ring's
  // nodes in order.
  graph::NodeId max_node = 0;
  for (graph::NodeId v : visited) max_node = std::max(max_node, v);
  t.index_of_.assign(max_node + 1, kNone);

  t.nodes_.reserve(visited.size());
  for (graph::NodeId v : visited) {
    const auto idx = static_cast<TreeIndex>(t.nodes_.size());
    Node n;
    n.network_node = v;
    const graph::NodeId parent = expander.bfs_parent(v);
    if (parent != graph::kInvalidNode) {
      const TreeIndex pidx = t.index_of_[parent];
      DAGSFC_ASSERT(pidx != kNone);
      n.father = pidx;
      n.ring = t.nodes_[pidx].ring + 1;
      t.nodes_[pidx].children.push_back(idx);
    }
    t.index_of_[v] = idx;
    t.nodes_.push_back(std::move(n));
  }
  return t;
}

SearchTree::TreeIndex SearchTree::find(graph::NodeId v) const {
  if (v >= index_of_.size()) return kNone;
  return index_of_[v];
}

std::vector<graph::NodeId> SearchTree::network_nodes() const {
  std::vector<graph::NodeId> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) out.push_back(n.network_node);
  return out;
}

graph::Path SearchTree::path_to_root(const graph::Graph& g,
                                     graph::NodeId v) const {
  TreeIndex i = find(v);
  DAGSFC_CHECK_MSG(i != kNone, "node was not reached by this search");
  graph::Path p;
  p.nodes.push_back(nodes_[i].network_node);
  while (nodes_[i].father != kNone) {
    const TreeIndex f = nodes_[i].father;
    const auto e =
        g.find_edge(nodes_[i].network_node, nodes_[f].network_node);
    DAGSFC_CHECK_MSG(e.has_value(), "father hop is not a network link");
    p.edges.push_back(*e);
    p.nodes.push_back(nodes_[f].network_node);
    i = f;
  }
  p.cost = g.path_cost(p);
  return p;
}

graph::Path SearchTree::path_from_root(const graph::Graph& g,
                                       graph::NodeId v) const {
  graph::Path p = path_to_root(g, v);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.edges.begin(), p.edges.end());
  return p;
}

std::vector<SearchTree::BinaryNode> SearchTree::binary_view() const {
  std::vector<BinaryNode> out(nodes_.size());
  for (TreeIndex i = 0; i < nodes_.size(); ++i) {
    out[i].father = nodes_[i].father;
    out[i].network_node = nodes_[i].network_node;
    // Left child: the first node this one discovered in the next iteration.
    if (!nodes_[i].children.empty()) {
      out[i].left_child = nodes_[i].children.front();
    }
  }
  // Right child: the next node discovered in the same iteration. Nodes are
  // stored in discovery order, so rings are contiguous index ranges.
  for (TreeIndex i = 0; i + 1 < nodes_.size(); ++i) {
    if (nodes_[i + 1].ring == nodes_[i].ring) {
      out[i].right_child = i + 1;
    }
  }
  return out;
}

}  // namespace dagsfc::core
