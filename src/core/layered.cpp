#include "core/layered.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "core/path_oracle.hpp"
#include "core/solver_detail.hpp"
#include "graph/dijkstra.hpp"
#include "graph/steiner.hpp"
#include "util/trace.hpp"

namespace dagsfc::core {

namespace {

using detail::Enumerator;
using detail::path_in_tree;
using detail::trivial_path;

/// Decisions a parallel-layer gadget transition carries: which VNF hosts
/// were assigned and which multicast tree connects them to the boundary.
/// Same shape as the exact solver's BackPointer, minus prev_end (the parent
/// chain already knows it).
struct GadgetBack {
  std::vector<NodeId> assignment;
  std::vector<graph::EdgeId> tree_edges;
};

graph::Path reversed(const graph::Graph& g, const graph::Path& p) {
  graph::Path out;
  out.nodes.assign(p.nodes.rbegin(), p.nodes.rend());
  out.edges.assign(p.edges.rbegin(), p.edges.rend());
  out.cost = g.path_cost(out);
  return out;
}

std::size_t tree_path_hops(const graph::ShortestPathTree& sp, NodeId v) {
  std::size_t hops = 0;
  for (NodeId u = v; u != sp.source; u = sp.parent[u]) ++hops;
  return hops;
}

/// Everything both engines share: the instance, the screened host sets, the
/// usable-link mask, the CSR view, and the per-layer merger trees (computed
/// once per layer — they depend only on the merger node and the ledger
/// epoch, which is constant for the duration of one solve).
struct LayeredRun {
  const ModelIndex& index;
  const net::CapacityLedger& ledger;
  const EmbeddingProblem& prob;
  const net::Network& net;
  const graph::Graph& g;
  const sfc::DagSfc& dag;
  const net::VnfCatalog& catalog;
  double rate;
  std::size_t omega;
  std::size_t n;
  std::size_t levels;
  NodeId source;
  NodeId destination;

  PathOracle oracle;
  graph::CsrView csr;
  graph::EdgeMaskBuffer usable_buf;
  graph::EdgeMask usable;

  /// Rent of a sequential layer's VNF per node, or a negative sentinel when
  /// the node cannot host it (not deployed, or residual capacity short).
  std::vector<std::vector<double>> seq_price;  // [layer][node]
  /// Capacity-screened, ascending host lists per parallel-layer VNF slot.
  std::vector<std::vector<std::vector<NodeId>>> choices;  // [layer][slot]
  std::vector<std::vector<NodeId>> merger_hosts;          // [layer]
  /// Distance trees from each merger candidate, built lazily per layer and
  /// shared across every gadget firing (and the reconstruction).
  std::vector<std::map<NodeId, std::shared_ptr<const graph::ShortestPathTree>>>
      from_merger;
  std::vector<char> merger_trees_ready;

  explicit LayeredRun(const ModelIndex& idx, const net::CapacityLedger& led)
      : index(idx),
        ledger(led),
        prob(idx.problem()),
        net(prob.net()),
        g(net.topology()),
        dag(prob.dag()),
        catalog(net.catalog()),
        rate(prob.flow.rate),
        omega(dag.num_layers()),
        n(g.num_nodes()),
        levels(omega + 1),
        source(prob.flow.source),
        destination(prob.flow.destination),
        // The oracle runs on its own embedded workspace: a caller-lent one
        // is reserved for the product sweep, and a mid-sweep Steiner or
        // tree query must not clobber the sweep's stamped state.
        oracle(g, led, prob.flow.rate, nullptr),
        csr(g.csr()) {
    usable_buf.assign(g.num_edges(), true);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      if (!ledger.link_can_carry(e, rate)) usable_buf.clear(e);
    }
    usable = usable_buf.view();

    seq_price.resize(omega);
    choices.resize(omega);
    merger_hosts.resize(omega);
    from_merger.resize(omega);
    merger_trees_ready.assign(omega, 0);
    for (std::size_t l = 0; l < omega; ++l) {
      const sfc::Layer& layer = dag.layer(l);
      if (!layer.has_merger()) {
        const VnfTypeId t = layer.vnfs[0];
        seq_price[l].assign(n, -1.0);
        for (NodeId v : hosts(t)) seq_price[l][v] = price_of(v, t);
      } else {
        choices[l].reserve(layer.vnfs.size());
        for (VnfTypeId t : layer.vnfs) choices[l].push_back(hosts(t));
        merger_hosts[l] = hosts(catalog.merger());
      }
    }
  }

  [[nodiscard]] std::vector<NodeId> hosts(VnfTypeId t) const {
    std::vector<NodeId> out;
    for (NodeId v : net.nodes_with(t)) {
      if (ledger.node_offers(v, t, rate)) out.push_back(v);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] double price_of(NodeId v, VnfTypeId t) const {
    return net.instance(*net.find_instance(v, t)).price;
  }

  [[nodiscard]] NodeId state_of(std::size_t l, NodeId v) const {
    return static_cast<NodeId>(l * n + v);
  }

  const std::map<NodeId, std::shared_ptr<const graph::ShortestPathTree>>&
  merger_trees(std::size_t l) {
    if (!merger_trees_ready[l]) {
      for (NodeId m : merger_hosts[l]) {
        from_merger[l].emplace(m, oracle.tree(m));
      }
      merger_trees_ready[l] = 1;
    }
    return from_merger[l];
  }

  /// The exact solver's work estimate, verbatim — the parallel gadget runs
  /// the identical enumeration per settled boundary state, so the same
  /// budget keeps the same instances out.
  [[nodiscard]] bool too_large(std::size_t max_work) const {
    double work = 0.0;
    std::size_t prev_ends = 1;
    for (std::size_t l = 0; l < omega; ++l) {
      const sfc::Layer& layer = dag.layer(l);
      double assignments = 1.0;
      for (VnfTypeId t : layer.vnfs) {
        assignments *= static_cast<double>(
            std::max<std::size_t>(1, net.nodes_with(t).size()));
      }
      const std::size_t ends = layer.has_merger()
                                   ? net.nodes_with(catalog.merger()).size()
                                   : net.nodes_with(layer.vnfs[0]).size();
      work += static_cast<double>(prev_ends) * assignments;
      prev_ends = std::max<std::size_t>(1, ends);
      if (work > static_cast<double>(max_work)) return true;
    }
    return false;
  }

  /// Shared tail: validate, capacity-check, and price the reconstructed
  /// solution — the same post-hoc sequence the exact solver runs.
  void finish(SolveResult& result, EmbeddingSolution sol) {
    Evaluator evaluator(index);
    DAGSFC_ASSERT(evaluator.validate(sol).empty());
    const ResourceUsage u = evaluator.usage(sol);
    result.path_queries = oracle.counters();
    if (!evaluator.feasible(u, ledger)) {
      result.failure_reason =
          "optimal uncapacitated solution violates a capacity constraint; "
          "the layered solver requires non-binding capacities";
      return;
    }
    result.cost = evaluator.cost(u);
    result.solution = std::move(sol);
    result.candidate_solutions = 1;
  }
};

// ---------------------------------------------------------------------------
// Scalar engine: plain Dijkstra over the implicit product graph. Exact for
// the uncapacitated objective; used when no (finite) delay budget is set.

SolveResult solve_scalar(LayeredRun& run, graph::SearchWorkspace& sw,
                         const Tracer& tr) {
  SolveResult result;
  const std::size_t n = run.n;
  const std::size_t omega = run.omega;

  sw.prepare_states(run.levels * n,
                    run.levels * (2 * run.g.num_edges() + 2));

  // Gadget decisions, keyed by the entered state; overwritten on each
  // strict improvement so the surviving entry always matches the final
  // parent pointer.
  std::unordered_map<NodeId, GadgetBack> gadget_back;

  std::vector<std::int64_t> settled(run.levels, 0);
  std::vector<std::int64_t> relaxed(run.levels, 0);

  const auto relax_better = [&](NodeId st, double c, NodeId par,
                                graph::EdgeId via) {
    if (c < sw.dist_if_live(st)) {
      sw.relax(st, c, par, via);
      sw.heap_push(c, st);
      ++result.expanded_sub_solutions;
      return true;
    }
    return false;
  };

  const NodeId start = run.state_of(0, run.source);
  const NodeId goal = run.state_of(omega, run.destination);
  sw.relax(start, 0.0, graph::kInvalidNode, graph::kInvalidEdge);
  sw.heap_push(0.0, start);

  bool reached_goal = false;
  {
    DAGSFC_TRACE_SCOPE("layered/sweep");
    while (!sw.heap_empty()) {
      const auto [d, st] = sw.heap_pop();
      if (d > sw.dist_unchecked(st)) continue;  // stale entry
      const std::size_t l = st / n;
      const NodeId v = static_cast<NodeId>(st % n);
      ++settled[l];
      if (st == goal) {
        reached_goal = true;
        break;
      }

      const bool routing_level = l == omega || !run.dag.layer(l).has_merger();
      if (routing_level) {
        const std::uint32_t row_end = run.csr.offsets[v + 1];
        for (std::uint32_t s = run.csr.offsets[v]; s != row_end; ++s) {
          const graph::Incidence in = run.csr.incidence[s];
          if (!run.usable.allows(in.edge)) continue;
          const double nd = d + run.csr.weights[s];
          if (relax_better(run.state_of(l, in.neighbor), nd, st, in.edge)) {
            ++relaxed[l];
          }
        }
        if (l < omega) {
          const double price = run.seq_price[l][v];
          if (price >= 0.0 &&
              relax_better(run.state_of(l + 1, v), d + price, st,
                           graph::kInvalidEdge)) {
            ++relaxed[l];
          }
        }
        continue;
      }

      // Parallel layer l: fire the gadget at boundary node v with final
      // cost d. Arithmetic mirrors ExactEmbedder's transition term by term
      // so equal decisions produce bit-equal intermediate values.
      const sfc::Layer& layer = run.dag.layer(l);
      const auto& trees = run.merger_trees(l);
      if (trees.empty()) continue;
      std::int64_t improvements = 0;
      std::int64_t assignments = 0;
      for (Enumerator en(run.choices[l]); !en.done(); en.advance()) {
        const std::vector<NodeId> assign = en.current();
        ++assignments;
        std::vector<NodeId> terminals{v};
        terminals.insert(terminals.end(), assign.begin(), assign.end());
        const auto tree = run.oracle.steiner(terminals);
        if (!tree) continue;
        double base = d + tree->cost;
        for (std::size_t i = 0; i < assign.size(); ++i) {
          base += run.price_of(assign[i], layer.vnfs[i]);
        }
        for (const auto& [m, sp] : trees) {
          double inner = 0.0;
          bool ok = true;
          for (NodeId a : assign) {
            if (sp->dist[a] == graph::kInfCost) {
              ok = false;
              break;
            }
            inner += sp->dist[a];
          }
          if (!ok) continue;
          const double c =
              base + run.price_of(m, run.catalog.merger()) + inner;
          const NodeId child = run.state_of(l + 1, m);
          if (relax_better(child, c, st, graph::kInvalidEdge)) {
            gadget_back[child] = GadgetBack{assign, tree->edges};
            ++relaxed[l];
            ++improvements;
          }
        }
      }
      if (tr) {
        SolveEvent e;
        e.kind = TraceEventKind::LayeredGadget;
        e.i0 = static_cast<std::int64_t>(l);
        e.i1 = static_cast<std::int64_t>(v);
        e.i2 = improvements;
        e.v0 = d;
        e.v1 = static_cast<double>(assignments);
        tr(e);
      }
    }
  }

  if (tr) {
    for (std::size_t l = 0; l < run.levels; ++l) {
      SolveEvent e;
      e.kind = TraceEventKind::LayeredLevel;
      e.i0 = static_cast<std::int64_t>(l);
      e.i1 = settled[l];
      e.i2 = relaxed[l];
      tr(e);
    }
  }

  if (!reached_goal) {
    result.failure_reason =
        "destination unreachable in the layered product graph";
    result.path_queries = run.oracle.counters();
    return result;
  }

  // ---- Reconstruction ----------------------------------------------------
  DAGSFC_TRACE_SCOPE("layered/reconstruct");

  // Entry state of each level: walk routing parents within a level until
  // the parent sits one level down; that node is the boundary the level was
  // entered at (the placement of the layer that ended there).
  std::vector<NodeId> entry_state(run.levels);
  {
    NodeId st = goal;
    for (std::size_t l = omega;; --l) {
      NodeId par = sw.parent(st);
      while (par != graph::kInvalidNode && par / n == l) {
        st = par;
        par = sw.parent(st);
      }
      entry_state[l] = st;
      if (l == 0) break;
      st = par;
    }
  }

  if (tr) {
    SolveEvent e;
    e.kind = TraceEventKind::FinalCandidate;
    e.i0 = static_cast<std::int64_t>(entry_state[omega] % n);
    e.v0 = sw.dist_unchecked(goal);
    e.v1 = 1.0;
    tr(e);
  }

  // Mirrors the exact solver's reconstruction: sequential segments and
  // inner paths are re-derived from the oracle (identical kernels, masks
  // and tie-breaks), parallel inter paths replay the stored Steiner tree.
  EmbeddingSolution sol;
  sol.placement.assign(run.index.num_slots(), graph::kInvalidNode);
  sol.inter_paths.resize(run.index.inter_paths().size());
  sol.inner_paths.resize(run.index.inner_paths().size());

  for (std::size_t l = omega; l-- > 0;) {
    const sfc::Layer& layer = run.dag.layer(l);
    const NodeId prev_end = static_cast<NodeId>(entry_state[l] % n);
    const NodeId end = static_cast<NodeId>(entry_state[l + 1] % n);
    const auto slots = run.index.layer_slots(l);
    const auto [ifirst, ilast] = run.index.inter_group_range(l);
    if (!layer.has_merger()) {
      DAGSFC_ASSERT(ilast - ifirst == 1);
      sol.placement[slots[0]] = end;
      auto p = prev_end == end
                   ? std::optional<graph::Path>(trivial_path(prev_end))
                   : run.oracle.min_cost_path(prev_end, end);
      DAGSFC_CHECK(p.has_value());
      sol.inter_paths[ifirst] = std::move(*p);
    } else {
      const GadgetBack& back = gadget_back.at(entry_state[l + 1]);
      for (std::size_t i = 0; i < back.assignment.size(); ++i) {
        sol.placement[slots[i]] = back.assignment[i];
      }
      sol.placement[slots.back()] = end;  // merger slot
      for (std::size_t i = ifirst; i < ilast; ++i) {
        sol.inter_paths[i] = path_in_tree(run.g, back.tree_edges, prev_end,
                                          back.assignment[i - ifirst]);
      }
      const auto [nfirst, nlast] = run.index.inner_layer_range(l);
      for (std::size_t i = nfirst; i < nlast; ++i) {
        const NodeId a = back.assignment[i - nfirst];
        auto p = a == end ? std::optional<graph::Path>(trivial_path(a))
                          : run.oracle.min_cost_path(a, end);
        DAGSFC_CHECK(p.has_value());
        sol.inner_paths[i] = std::move(*p);
      }
    }
  }
  {
    const auto [dfirst, dlast] = run.index.inter_group_range(omega);
    DAGSFC_ASSERT(dlast - dfirst == 1);
    const NodeId best_end = static_cast<NodeId>(entry_state[omega] % n);
    auto p = best_end == run.destination
                 ? std::optional<graph::Path>(trivial_path(best_end))
                 : run.oracle.min_cost_path(best_end, run.destination);
    DAGSFC_CHECK(p.has_value());
    sol.inter_paths[dfirst] = std::move(*p);
  }

  run.finish(result, std::move(sol));
  return result;
}

// ---------------------------------------------------------------------------
// Bi-criteria engine: (cost, delay) labels with Pareto dominance, settled
// in (cost, state, delay) order, pruned against the budget at creation.
// The first label settled at the goal is the cheapest embedding whose
// critical-path delay fits.

struct Label {
  double cost = 0.0;
  double delay = 0.0;
  NodeId state = graph::kInvalidNode;
  std::int32_t parent = -1;          ///< label index, -1 for the root
  graph::EdgeId via = graph::kInvalidEdge;  ///< routing arc, else invalid
  std::int32_t gadget = -1;          ///< GadgetBack index, -1 otherwise
  bool dead = false;                 ///< dominated after insertion
};

SolveResult solve_budget(LayeredRun& run, double budget,
                         const DelayModel& model, std::size_t max_labels,
                         const Tracer& tr) {
  SolveResult result;
  const std::size_t n = run.n;
  const std::size_t omega = run.omega;

  std::vector<Label> labels;
  std::vector<GadgetBack> gadget_backs;
  std::vector<std::vector<std::uint32_t>> frontier(run.levels * n);

  // (cost, state, delay, label) min-heap: cheapest first, ties by state id
  // then delay — the scalar engine's pop order with delay as the third key.
  using HeapEntry = std::tuple<double, NodeId, double, std::uint32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;

  std::vector<std::int64_t> settled(run.levels, 0);
  std::vector<std::int64_t> relaxed(run.levels, 0);

  bool overflow = false;
  const auto try_insert = [&](NodeId st, double c, double dly,
                              std::int32_t parent, graph::EdgeId via,
                              std::int32_t gadget) {
    if (dly > budget) return false;
    auto& front = frontier[st];
    for (const std::uint32_t id : front) {
      if (labels[id].cost <= c && labels[id].delay <= dly) return false;
    }
    std::size_t kept = 0;
    for (const std::uint32_t id : front) {
      if (labels[id].cost >= c && labels[id].delay >= dly) {
        labels[id].dead = true;
      } else {
        front[kept++] = id;
      }
    }
    front.resize(kept);
    if (labels.size() >= max_labels) {
      overflow = true;
      return false;
    }
    const auto idx = static_cast<std::uint32_t>(labels.size());
    labels.push_back(Label{c, dly, st, parent, via, gadget, false});
    front.push_back(idx);
    heap.emplace(c, st, dly, idx);
    ++result.expanded_sub_solutions;
    return true;
  };

  const NodeId goal = run.state_of(omega, run.destination);
  try_insert(run.state_of(0, run.source), 0.0, 0.0, -1, graph::kInvalidEdge,
             -1);

  std::int32_t goal_label = -1;
  {
    DAGSFC_TRACE_SCOPE("layered/sweep_budget");
    while (!heap.empty() && !overflow) {
      const auto [c, st, dly, idx] = heap.top();
      heap.pop();
      if (labels[idx].dead) continue;
      const std::size_t l = st / n;
      const NodeId v = static_cast<NodeId>(st % n);
      ++settled[l];
      if (st == goal) {
        goal_label = static_cast<std::int32_t>(idx);
        break;
      }
      const std::int32_t from = static_cast<std::int32_t>(idx);

      const bool routing_level = l == omega || !run.dag.layer(l).has_merger();
      if (routing_level) {
        const std::uint32_t row_end = run.csr.offsets[v + 1];
        for (std::uint32_t s = run.csr.offsets[v]; s != row_end; ++s) {
          const graph::Incidence in = run.csr.incidence[s];
          if (!run.usable.allows(in.edge)) continue;
          if (try_insert(run.state_of(l, in.neighbor),
                         c + run.csr.weights[s], dly + model.per_hop_ms,
                         from, in.edge, -1)) {
            ++relaxed[l];
          }
        }
        if (l < omega) {
          const double price = run.seq_price[l][v];
          if (price >= 0.0 &&
              try_insert(run.state_of(l + 1, v), c + price,
                         dly + model.processing_ms(run.dag.layer(l).vnfs[0]),
                         from, graph::kInvalidEdge, -1)) {
            ++relaxed[l];
          }
        }
        continue;
      }

      const sfc::Layer& layer = run.dag.layer(l);
      const auto& trees = run.merger_trees(l);
      if (trees.empty()) continue;
      std::int64_t improvements = 0;
      std::int64_t assignments = 0;
      for (Enumerator en(run.choices[l]); !en.done(); en.advance()) {
        const std::vector<NodeId> assign = en.current();
        ++assignments;
        std::vector<NodeId> terminals{v};
        terminals.insert(terminals.end(), assign.begin(), assign.end());
        const auto tree = run.oracle.steiner(terminals);
        if (!tree) continue;
        double base = c + tree->cost;
        for (std::size_t i = 0; i < assign.size(); ++i) {
          base += run.price_of(assign[i], layer.vnfs[i]);
        }
        // Inter-layer hops inside the multicast tree are fixed per branch;
        // inner hops depend on the merger, so the branch maxima are folded
        // per (assignment, merger) pair below.
        std::vector<double> inter_delay(assign.size());
        for (std::size_t i = 0; i < assign.size(); ++i) {
          inter_delay[i] =
              static_cast<double>(
                  path_in_tree(run.g, tree->edges, v, assign[i]).length()) *
                  model.per_hop_ms +
              model.processing_ms(layer.vnfs[i]);
        }
        for (const auto& [m, sp] : trees) {
          double inner = 0.0;
          double branch_max = 0.0;
          bool ok = true;
          for (std::size_t i = 0; i < assign.size(); ++i) {
            const NodeId a = assign[i];
            if (sp->dist[a] == graph::kInfCost) {
              ok = false;
              break;
            }
            inner += sp->dist[a];
            const double branch =
                inter_delay[i] +
                static_cast<double>(tree_path_hops(*sp, a)) * model.per_hop_ms;
            branch_max = std::max(branch_max, branch);
          }
          if (!ok) continue;
          const double cost =
              base + run.price_of(m, run.catalog.merger()) + inner;
          const double delay = dly + branch_max + model.merger_ms;
          const auto gb = static_cast<std::int32_t>(gadget_backs.size());
          if (try_insert(run.state_of(l + 1, m), cost, delay, from,
                         graph::kInvalidEdge, gb)) {
            gadget_backs.push_back(GadgetBack{assign, tree->edges});
            ++relaxed[l];
            ++improvements;
          }
        }
      }
      if (tr) {
        SolveEvent e;
        e.kind = TraceEventKind::LayeredGadget;
        e.i0 = static_cast<std::int64_t>(l);
        e.i1 = static_cast<std::int64_t>(v);
        e.i2 = improvements;
        e.v0 = c;
        e.v1 = static_cast<double>(assignments);
        tr(e);
      }
    }
  }

  if (tr) {
    for (std::size_t l = 0; l < run.levels; ++l) {
      SolveEvent e;
      e.kind = TraceEventKind::LayeredLevel;
      e.i0 = static_cast<std::int64_t>(l);
      e.i1 = settled[l];
      e.i2 = relaxed[l];
      tr(e);
    }
  }

  result.path_queries = run.oracle.counters();
  if (overflow) {
    result.failure_reason = "layered label budget exhausted (" +
                            std::to_string(max_labels) +
                            " labels); relax the delay budget or raise "
                            "LayeredOptions::max_labels";
    return result;
  }
  if (goal_label < 0) {
    result.failure_reason = "no embedding fits the delay budget of " +
                            std::to_string(budget) + " ms";
    return result;
  }

  // ---- Reconstruction ----------------------------------------------------
  // Under a budget the winning chain's real routing matters (its hop counts
  // were charged against the budget), so the sequential segments replay the
  // label chain verbatim instead of re-deriving min-cost paths.
  DAGSFC_TRACE_SCOPE("layered/reconstruct_budget");

  std::vector<std::uint32_t> chain;
  for (std::int32_t i = goal_label; i >= 0; i = labels[i].parent) {
    chain.push_back(static_cast<std::uint32_t>(i));
  }
  std::reverse(chain.begin(), chain.end());

  if (tr) {
    SolveEvent e;
    e.kind = TraceEventKind::FinalCandidate;
    e.i0 = static_cast<std::int64_t>(labels[goal_label].state % n);
    e.v0 = labels[goal_label].cost;
    e.v1 = 1.0;
    tr(e);
  }

  EmbeddingSolution sol;
  sol.placement.assign(run.index.num_slots(), graph::kInvalidNode);
  sol.inter_paths.resize(run.index.inter_paths().size());
  sol.inner_paths.resize(run.index.inner_paths().size());

  graph::Path seg = trivial_path(run.source);
  for (std::size_t k = 1; k < chain.size(); ++k) {
    const Label& lab = labels[chain[k]];
    const NodeId node = static_cast<NodeId>(lab.state % n);
    const std::size_t to_level = lab.state / n;
    if (lab.via != graph::kInvalidEdge) {  // routing step within a level
      seg.nodes.push_back(node);
      seg.edges.push_back(lab.via);
      continue;
    }
    const std::size_t l = to_level - 1;  // the layer just embedded
    const sfc::Layer& layer = run.dag.layer(l);
    const auto slots = run.index.layer_slots(l);
    const auto [ifirst, ilast] = run.index.inter_group_range(l);
    if (lab.gadget < 0) {  // placement arc of a sequential layer
      DAGSFC_ASSERT(!layer.has_merger());
      DAGSFC_ASSERT(seg.target() == node);
      sol.placement[slots[0]] = node;
      seg.cost = run.g.path_cost(seg);
      sol.inter_paths[ifirst] = std::move(seg);
    } else {  // gadget transition of a parallel layer
      DAGSFC_ASSERT(layer.has_merger());
      DAGSFC_ASSERT(seg.edges.empty());  // no routing on a parallel level
      const NodeId prev_end = seg.nodes.front();
      const GadgetBack& back = gadget_backs[lab.gadget];
      for (std::size_t i = 0; i < back.assignment.size(); ++i) {
        sol.placement[slots[i]] = back.assignment[i];
      }
      sol.placement[slots.back()] = node;
      for (std::size_t i = ifirst; i < ilast; ++i) {
        sol.inter_paths[i] = path_in_tree(run.g, back.tree_edges, prev_end,
                                          back.assignment[i - ifirst]);
      }
      const auto& trees = run.from_merger[l];
      const auto sp = trees.at(node);
      const auto [nfirst, nlast] = run.index.inner_layer_range(l);
      for (std::size_t i = nfirst; i < nlast; ++i) {
        const NodeId a = back.assignment[i - nfirst];
        if (a == node) {
          sol.inner_paths[i] = trivial_path(a);
        } else {
          // The budget charged the tree's hop count for this branch, so
          // the real path must be the same tree path (reversed to run
          // VNF → merger).
          auto p = sp->path_to(a);
          DAGSFC_CHECK(p.has_value());
          sol.inner_paths[i] = reversed(run.g, *p);
        }
      }
    }
    seg = trivial_path(node);
  }
  {
    const auto [dfirst, dlast] = run.index.inter_group_range(omega);
    DAGSFC_ASSERT(dlast - dfirst == 1);
    DAGSFC_ASSERT(seg.target() == run.destination);
    seg.cost = run.g.path_cost(seg);
    sol.inter_paths[dfirst] = std::move(seg);
  }

  run.finish(result, std::move(sol));
  return result;
}

}  // namespace

SolveResult LayeredEmbedder::do_solve(const ModelIndex& index,
                                      const net::CapacityLedger& ledger,
                                      Rng& /*rng*/, TraceSink* trace,
                                      graph::SearchWorkspace* workspace)
    const {
  const Tracer tr(trace);
  LayeredRun run(index, ledger);

  if (run.too_large(opts_.max_work)) {
    SolveResult result;
    result.failure_reason = "instance too large for the layered solver";
    result.path_queries = run.oracle.counters();
    return result;
  }

  // "No budget" and "budget = ∞" are one and the same code path: the
  // scalar engine, whose labels never carry a delay coordinate. The
  // bi-criteria engine only runs for a finite budget, where delay can
  // actually prune.
  const bool constrained = opts_.delay_budget_ms.has_value() &&
                           std::isfinite(*opts_.delay_budget_ms);
  if (constrained) {
    return solve_budget(run, *opts_.delay_budget_ms, opts_.delay_model,
                        opts_.max_labels, tr);
  }

  graph::SearchWorkspace local_ws;
  graph::SearchWorkspace& sw = workspace != nullptr ? *workspace : local_ws;
  return solve_scalar(run, sw, tr);
}

}  // namespace dagsfc::core
