#pragma once
/// \file validator.hpp
/// Independent admissibility oracle for embedding solutions.
///
/// Every embedder is scored by core::Evaluator, and the exact/layered
/// solvers even assert Evaluator::validate() before returning — so a bug
/// shared by an embedder and the Evaluator would sail through every
/// differential test. SolutionValidator closes that hole: it re-derives all
/// admissibility facts straight from the ModelIndex layer structure, the
/// Network deployment sets, and the raw topology, without calling
/// Evaluator::validate(), usage() or cost():
///
///   * placements sit on nodes whose deployment set offers the slot's VNF
///     type (an instance must exist — formula (7) has a term to rent);
///   * every real-path is a contiguous, edge-distinct walk whose endpoints
///     are re-resolved from the DAG layer order (group l runs from layer
///     l−1's end slot to each of layer l's VNF slots; inner paths run from
///     a VNF slot to the same layer's merger — never across layers);
///   * reuse counts are recomputed from scratch (multicast discount of
///     formula (9) per inter group, independent charging of formula (10)
///     per inner path) and checked against residual capacities via the
///     ledger's own can_apply;
///   * the objective is re-accumulated in the Evaluator's published term
///     order (instance ids ascending, then edge ids ascending, two partial
///     sums added last) so a SolveResult's cost must match *bitwise* — any
///     divergence, even one ulp, means the solver priced a different
///     solution than it returned.
///
/// The validator never mutates anything and holds no state between calls;
/// one instance can check solutions from any embedder on the same problem.

#include <string>
#include <vector>

#include "core/embedder.hpp"
#include "core/model.hpp"

namespace dagsfc::core {

struct ValidationReport {
  std::vector<std::string> errors;
  /// Objective (1) re-accumulated from the solution; meaningful when the
  /// structural checks passed (errors may still contain cost/capacity
  /// complaints).
  double recomputed_cost = 0.0;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
  /// All violations joined for gtest failure messages.
  [[nodiscard]] std::string to_string() const;
};

class SolutionValidator {
 public:
  explicit SolutionValidator(const ModelIndex& index) : index_(&index) {}

  /// Full admissibility check of \p sol against the residual state in
  /// \p ledger (structure, layer order, deployment sets, capacities).
  [[nodiscard]] ValidationReport check_solution(
      const EmbeddingSolution& sol, const net::CapacityLedger& ledger) const;

  /// check_solution() plus the bitwise cost cross-check: a successful
  /// \p result must report exactly the recomputed objective. A failed
  /// result (no solution) yields an empty report — there is nothing to
  /// admit.
  [[nodiscard]] ValidationReport check(const SolveResult& result,
                                       const net::CapacityLedger& ledger)
      const;

 private:
  const ModelIndex* index_;
};

}  // namespace dagsfc::core
