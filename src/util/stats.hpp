#pragma once
/// \file stats.hpp
/// Streaming and batch summary statistics for the Monte-Carlo harness.

#include <cstddef>
#include <vector>

namespace dagsfc {

/// Welford online mean/variance accumulator. Merging two accumulators is
/// supported so per-thread partials can be combined.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of the 95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector, including selected percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a Summary. The input is copied and sorted internally.
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Linear-interpolation percentile of a *sorted* sample vector, q in [0,1].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

}  // namespace dagsfc
