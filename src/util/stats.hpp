#pragma once
/// \file stats.hpp
/// Streaming and batch summary statistics for the Monte-Carlo harness and
/// the online serving layer.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dagsfc {

/// Welford online mean/variance accumulator. Merging two accumulators is
/// supported so per-thread partials can be combined.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Half-width of the 95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector, including selected percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a Summary. The input is copied and sorted internally.
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Linear-interpolation percentile of a *sorted* sample vector, q in [0,1].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

/// Fixed-layout log-spaced histogram for quantile queries over streams that
/// are too long to keep (per-request latencies, per-flow costs). The value
/// range [min_bound, max_bound) is covered by `buckets_per_decade` buckets
/// per power of ten with geometric boundaries; values below min_bound
/// (including zero and negatives) land in an underflow bucket, values at or
/// above max_bound in an overflow bucket. Two histograms with the same
/// layout merge by adding counts, so per-thread partials combine exactly.
///
/// Quantiles interpolate linearly inside the winning bucket and clamp to the
/// observed min/max, so they are deterministic functions of the counts —
/// equal counts give bitwise-equal quantiles. Resolution is bounded by the
/// bucket width: ≤ 10^(1/buckets_per_decade) relative error inside range.
class Histogram {
 public:
  explicit Histogram(double min_bound = 1e-3, double max_bound = 1e9,
                     std::size_t buckets_per_decade = 16);

  void add(double x) noexcept;
  /// Adds \p other's counts; throws ContractViolation on layout mismatch.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Interpolated quantile, q in [0,1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  [[nodiscard]] bool same_layout(const Histogram& other) const noexcept;
  /// Bitwise equality of layout, counts, and moments — what the serve
  /// determinism tests compare across worker counts.
  [[nodiscard]] friend bool operator==(const Histogram&,
                                       const Histogram&) = default;
  /// Bucket count including the underflow (front) and overflow (back) bins.
  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const;
  /// [lower, upper) value range of bucket \p b. The underflow bucket spans
  /// (-inf, min_bound), the overflow bucket [max_bound, +inf).
  [[nodiscard]] std::pair<double, double> bucket_bounds(std::size_t b) const;
  /// Index of the bucket \p x falls into (public so external accumulators —
  /// the metric registry's atomic histogram cells — can share the layout).
  [[nodiscard]] std::size_t bucket_of(double x) const noexcept;

  /// Materializes a Histogram from externally-held parts: \p layout
  /// supplies the bucket layout, the remaining arguments the counts and
  /// moments. \p counts must match the layout's bucket count. When \p n is
  /// zero the moments are normalized to the empty representation
  /// (min = max = sum = 0), so a snapshot of an untouched accumulator
  /// compares bitwise-equal to a freshly constructed Histogram.
  [[nodiscard]] static Histogram from_parts(const Histogram& layout,
                                            std::vector<std::uint64_t> counts,
                                            std::uint64_t n, double sum,
                                            double min, double max);

 private:
  double min_bound_ = 0.0;
  double max_bound_ = 0.0;
  double log_min_ = 0.0;
  double inv_log_step_ = 0.0;  ///< buckets per log10 unit
  std::size_t spanned_ = 0;    ///< in-range buckets (excl. under/overflow)
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dagsfc
