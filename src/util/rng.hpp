#pragma once
/// \file rng.hpp
/// Deterministic random number generation.
///
/// All stochastic components of the library (network generator, SFC
/// generator, RANV baseline, Monte-Carlo harness) draw from dagsfc::Rng so
/// that every experiment is reproducible from a single 64-bit seed. The
/// engine is xoshiro256** seeded through splitmix64, which gives independent
/// high-quality streams from consecutive seeds — important because the trial
/// runner derives one child seed per trial.

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace dagsfc {

/// splitmix64 step; used for seeding and for deriving child seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state by running splitmix64 on \p seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Uniform real in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform_real(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Uniformly chosen element of \p v. Requires non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    DAGSFC_CHECK_MSG(!v.empty(), "pick() from empty vector");
    return v[index(v.size())];
  }

  /// Fisher–Yates shuffle in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent child seed (for per-trial streams).
  [[nodiscard]] std::uint64_t fork_seed() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace dagsfc
