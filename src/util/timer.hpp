#pragma once
/// \file timer.hpp
/// Monotonic wall-clock timer for the runtime-complexity benches.

#include <chrono>

namespace dagsfc {

class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dagsfc
