#include "util/json.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace dagsfc::util {

std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (unsigned char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  // 2^53 bounds the integers a double represents exactly.
  constexpr double kMaxExactInt = 9007199254740992.0;
  if (v == std::floor(v) && std::fabs(v) < kMaxExactInt) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace dagsfc::util
