#pragma once
/// \file check.hpp
/// Lightweight contract checking used across the library.
///
/// DAGSFC_CHECK is an always-on precondition/invariant check that throws
/// dagsfc::ContractViolation (derived from std::logic_error) with the failing
/// expression and source location. It is used for API misuse that a caller
/// can trigger; internal sanity checks that should be unreachable use
/// DAGSFC_ASSERT, which is compiled out in NDEBUG builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace dagsfc {

/// Thrown when a DAGSFC_CHECK contract fails.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace dagsfc

#define DAGSFC_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::dagsfc::detail::contract_fail(#expr, __FILE__, __LINE__, {});   \
  } while (false)

#define DAGSFC_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::dagsfc::detail::contract_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define DAGSFC_ASSERT(expr) ((void)0)
#else
#define DAGSFC_ASSERT(expr) DAGSFC_CHECK(expr)
#endif
