#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace dagsfc {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  DAGSFC_CHECK_MSG(!columns_.empty(), "table needs at least one column");
}

Table& Table::row() {
  DAGSFC_CHECK_MSG(rows_.empty() || rows_.back().size() == columns_.size(),
                   "previous row is incomplete");
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  DAGSFC_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  DAGSFC_CHECK_MSG(rows_.back().size() < columns_.size(), "row overflow");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

std::string Table::ascii() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << v;
    }
    os << " |\n";
  };
  emit_row(columns_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char ch : v) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "," : "") << csv_escape(columns_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c ? "," : "") << csv_escape(r[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << ascii(); }

}  // namespace dagsfc
