#include "util/build_info.hpp"

namespace dagsfc::util {

namespace {

std::string build_flags() {
  std::string flags;
  const auto append = [&flags](const char* f) {
    if (!flags.empty()) flags += ',';
    flags += f;
  };
#ifdef DAGSFC_TRACE
  append("trace");
#endif
#if defined(__SANITIZE_ADDRESS__)
  append("asan");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  append("asan");
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  append("tsan");
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  append("tsan");
#endif
#endif
#ifdef NDEBUG
  append("ndebug");
#endif
  if (flags.empty()) flags = "none";
  return flags;
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
#ifdef DAGSFC_VERSION
  info.version = DAGSFC_VERSION;
#else
  info.version = "dev";
#endif
  info.flags = build_flags();
  return info;
}

ProcessMetrics::ProcessMetrics(MetricRegistry& registry)
    : start_(std::chrono::steady_clock::now()) {
  const BuildInfo info = build_info();
  // Info-style metric: the value is always 1; the payload is the labels.
  registry
      .gauge("dagsfc_build_info",
             {{"version", info.version}, {"flags", info.flags}})
      .set(1.0);
  uptime_ = registry.gauge("dagsfc_uptime_seconds");
  uptime_.set(0.0);
}

void ProcessMetrics::update() const noexcept {
  uptime_.set(uptime_seconds());
}

double ProcessMetrics::uptime_seconds() const noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

}  // namespace dagsfc::util
