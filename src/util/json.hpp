#pragma once
/// \file json.hpp
/// Minimal JSON emission helpers shared by the bench JSON lines and the
/// Chrome-trace exporter. This is not a JSON library — the emitters build
/// their documents by hand — but every string that lands inside a JSON
/// string literal must go through json_escape, and every number through
/// json_number so the output is deterministic byte for byte.

#include <string>

namespace dagsfc::util {

/// Escapes \p in for embedding inside a JSON string literal: quote,
/// backslash, the short escapes (\b \f \n \r \t) and \u00XX for every other
/// control character. Bytes ≥ 0x20 (including UTF-8 multibyte sequences)
/// pass through unchanged.
[[nodiscard]] std::string json_escape(const std::string& in);

/// Deterministic JSON rendering of a double: integral values in range print
/// without a fraction ("3"), everything else via %.17g (round-trip exact).
/// NaN/Inf are not valid JSON and render as null.
[[nodiscard]] std::string json_number(double v);

}  // namespace dagsfc::util
