#pragma once
/// \file trace.hpp
/// Generic structured-tracing substrate: typed events, a thread-safe
/// ring-buffered recorder, RAII scoped spans, and a Chrome trace_event
/// exporter (the JSON `about:tracing` / Perfetto load directly).
///
/// Two layers of cost control:
///   * runtime — every recording call is a no-op when the recorder pointer
///     is null or the recorder is disabled, so library code can thread an
///     optional recorder through hot paths;
///   * compile time — the DAGSFC_TRACE_SCOPE / DAGSFC_TRACE_INSTANT macros
///     target the process-global recorder and compile to nothing unless the
///     build defines DAGSFC_TRACE (cmake -DDAGSFC_TRACE=ON), making the
///     ambient instrumentation zero-overhead in production builds.
///
/// Timestamps: the recorder defaults to a *logical* clock (a per-recorder
/// sequence number) so traces of deterministic code are byte-stable across
/// runs and thread counts; Clock::Wall switches to real microseconds for
/// profiling. Thread attribution uses ThreadPool::current_worker_id(), so
/// events recorded from pool workers carry a stable small lane id instead
/// of an OS thread id.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.hpp"

namespace dagsfc::util {

/// One Chrome-trace-compatible event. `phase` follows the trace_event
/// format: 'B'egin / 'E'nd span edges, 'i'nstant, 'C'ounter, 'X' complete.
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'i';
  std::uint64_t ts = 0;   ///< microseconds (logical sequence by default)
  std::uint64_t dur = 0;  ///< only meaningful for phase 'X'
  std::uint32_t tid = 0;  ///< thread-pool worker lane (0 = main/unpooled)
  /// Small typed payload rendered into the Chrome "args" object.
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// Thread-safe bounded event store. When full, the oldest events are
/// dropped (and counted) — tracing must never grow without bound inside a
/// long-running embedding service.
class TraceRecorder {
 public:
  enum class Clock : std::uint8_t {
    Logical,  ///< ts = monotonically increasing sequence number
    Wall,     ///< ts = steady_clock microseconds since recorder creation
  };

  explicit TraceRecorder(std::size_t capacity = 1 << 16,
                         Clock clock = Clock::Logical);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Stamps ts (unless the caller pre-set a nonzero one under Clock::Wall)
  /// and tid, then appends; drops the oldest event when at capacity.
  void record(TraceEvent e);

  /// Convenience for name-only events.
  void instant(std::string name, std::string cat = {});

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Copy of the buffered events in record order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  void clear();

 private:
  [[nodiscard]] std::uint64_t stamp();

  const std::size_t capacity_;
  const Clock clock_;
  bool enabled_ = true;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;   // ring buffer, `head_` is the oldest
  std::size_t head_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t epoch_us_ = 0;  // steady_clock at construction (Wall mode)
};

/// RAII scoped span: records 'B' at construction and 'E' at destruction.
/// No-op when the recorder is null or disabled at construction time.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* rec, std::string name, std::string cat = {});
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* rec_;
  std::string name_;
  std::string cat_;
};

/// Renders events as a Chrome trace_event JSON document (object form, so
/// Perfetto metadata could be added later). Deterministic byte-for-byte for
/// a given event sequence.
[[nodiscard]] std::string to_chrome_trace(std::span<const TraceEvent> events,
                                          std::uint32_t pid = 0);

/// Process-global recorder targeted by the DAGSFC_TRACE_* macros; nullptr
/// until install_global_trace() runs. Intended for ambient instrumentation
/// (the per-solve EmbeddingTrace does not go through it).
[[nodiscard]] TraceRecorder* global_trace() noexcept;

/// Installs (or replaces) the global recorder and returns it.
TraceRecorder& install_global_trace(std::size_t capacity = 1 << 16,
                                    TraceRecorder::Clock clock =
                                        TraceRecorder::Clock::Logical);

/// Tears the global recorder down (tests).
void uninstall_global_trace() noexcept;

}  // namespace dagsfc::util

// Ambient instrumentation macros. The phase-meter half is ALWAYS compiled:
// every DAGSFC_TRACE_SCOPE site feeds the global metric registry's
// dagsfc_phase_seconds{phase=...} gauge and dagsfc_phase_calls_total
// counter through a function-local static PhaseMeter (one registry lookup
// per site, two relaxed atomics per entry), so per-phase solve timings
// exist without -DDAGSFC_TRACE=ON. The TraceSpan half — and the instant
// events — still compile out unless the build defines DAGSFC_TRACE.
#define DAGSFC_TRACE_CONCAT_IMPL(a, b) a##b
#define DAGSFC_TRACE_CONCAT(a, b) DAGSFC_TRACE_CONCAT_IMPL(a, b)
#define DAGSFC_PHASE_SCOPE(name)                                        \
  static const ::dagsfc::util::PhaseMeter DAGSFC_TRACE_CONCAT(          \
      dagsfc_phase_meter_, __LINE__){(name)};                           \
  const ::dagsfc::util::PhaseTimer DAGSFC_TRACE_CONCAT(                 \
      dagsfc_phase_timer_,                                              \
      __LINE__)(DAGSFC_TRACE_CONCAT(dagsfc_phase_meter_, __LINE__))
#if defined(DAGSFC_TRACE)
#define DAGSFC_TRACE_SCOPE(name)                          \
  DAGSFC_PHASE_SCOPE(name);                               \
  ::dagsfc::util::TraceSpan DAGSFC_TRACE_CONCAT(          \
      dagsfc_trace_span_, __LINE__)(::dagsfc::util::global_trace(), (name))
#define DAGSFC_TRACE_INSTANT(name)                                     \
  do {                                                                 \
    if (auto* dagsfc_trace_rec = ::dagsfc::util::global_trace())       \
      dagsfc_trace_rec->instant((name));                               \
  } while (false)
#else
#define DAGSFC_TRACE_SCOPE(name) DAGSFC_PHASE_SCOPE(name)
#define DAGSFC_TRACE_INSTANT(name) \
  do {                             \
  } while (false)
#endif
