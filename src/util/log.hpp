#pragma once
/// \file log.hpp
/// Minimal leveled logging to stderr. Thread-safe (one lock per line).
/// Default level is Warn so library users see nothing unless they opt in.

#include <optional>
#include <sstream>
#include <string>

namespace dagsfc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-sensitive);
/// nullopt for anything else. The shared vocabulary of the DAGSFC_LOG_LEVEL
/// environment variable and the CLIs' --log-level flag.
[[nodiscard]] std::optional<LogLevel> parse_log_level(const std::string& text);

/// The level requested by the DAGSFC_LOG_LEVEL environment variable, if set
/// and valid. It is applied once at startup (before main); this accessor
/// lets CLIs report it.
[[nodiscard]] std::optional<LogLevel> env_log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

}  // namespace dagsfc

#define DAGSFC_LOG(level, expr)                                      \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::dagsfc::log_level())) {                   \
      std::ostringstream dagsfc_log_os_;                             \
      dagsfc_log_os_ << expr;                                        \
      ::dagsfc::detail::log_line(level, dagsfc_log_os_.str());       \
    }                                                                \
  } while (false)

#define DAGSFC_DEBUG(expr) DAGSFC_LOG(::dagsfc::LogLevel::Debug, expr)
#define DAGSFC_INFO(expr) DAGSFC_LOG(::dagsfc::LogLevel::Info, expr)
#define DAGSFC_WARN(expr) DAGSFC_LOG(::dagsfc::LogLevel::Warn, expr)
#define DAGSFC_ERROR(expr) DAGSFC_LOG(::dagsfc::LogLevel::Error, expr)
