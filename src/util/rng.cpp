#include "util/rng.hpp"

#include <cmath>

namespace dagsfc {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // xoshiro state must not be all-zero; splitmix64 of any seed guarantees it.
  for (auto& w : s_) w = splitmix64(seed);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DAGSFC_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

std::size_t Rng::index(std::size_t n) {
  DAGSFC_CHECK_MSG(n > 0, "index() over empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

double Rng::uniform_real(double lo, double hi) {
  DAGSFC_CHECK(lo <= hi);
  // 53-bit mantissa draw in [0,1).
  const double u =
      static_cast<double>((*this)() >> 11) * (1.0 / 9007199254740992.0);
  return lo + u * (hi - lo);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real(0.0, 1.0) < p;
}

std::uint64_t Rng::fork_seed() noexcept { return (*this)(); }

}  // namespace dagsfc
