#pragma once
/// \file build_info.hpp
/// Process-level identity metrics: `dagsfc_build_info{version=,flags=}` (an
/// info-style gauge pinned to 1, Prometheus' idiom for attaching build
/// metadata to a scrape) and `dagsfc_uptime_seconds` (seconds since
/// registration). Both CLIs register these on the default registry at
/// startup so every exposition answers "which binary, built how, up for how
/// long" without shelling out to the box.

#include <chrono>
#include <string>

#include "util/metrics.hpp"

namespace dagsfc::util {

/// Compile-time identity of this binary.
struct BuildInfo {
  std::string version;  ///< project version (CMake), "dev" if unset
  std::string flags;    ///< comma-joined build flags ("trace,asan", "none")
};

/// The identity baked into this translation unit's build.
[[nodiscard]] BuildInfo build_info();

/// Registers the two process metrics on \p registry and keeps the uptime
/// gauge fresh via update(). The build-info gauge never changes after
/// construction; uptime is whatever update() last stamped, so callers wire
/// update() into their scrape path (MetricsHttpServer's before_scrape hook)
/// or a reporter tick.
class ProcessMetrics {
 public:
  explicit ProcessMetrics(MetricRegistry& registry = MetricRegistry::global());

  /// Stamps dagsfc_uptime_seconds with seconds since construction.
  void update() const noexcept;
  [[nodiscard]] double uptime_seconds() const noexcept;

 private:
  std::chrono::steady_clock::time_point start_;
  Gauge uptime_;
};

}  // namespace dagsfc::util
