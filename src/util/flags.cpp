#include "util/flags.hpp"

#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/log.hpp"

namespace dagsfc {

std::chrono::nanoseconds parse_duration(const std::string& text) {
  if (text.empty()) {
    throw std::invalid_argument("empty duration");
  }
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed duration: " + text);
  }
  if (pos == 0 || pos >= text.size()) {
    throw std::invalid_argument("duration needs a unit suffix (ns/us/ms/s/m/h): " +
                                text);
  }
  if (value < 0.0 || !std::isfinite(value)) {
    throw std::invalid_argument("duration must be non-negative: " + text);
  }
  const std::string unit = text.substr(pos);
  double ns = 0.0;
  if (unit == "ns") {
    ns = value;
  } else if (unit == "us") {
    ns = value * 1e3;
  } else if (unit == "ms") {
    ns = value * 1e6;
  } else if (unit == "s") {
    ns = value * 1e9;
  } else if (unit == "m") {
    ns = value * 60e9;
  } else if (unit == "h") {
    ns = value * 3600e9;
  } else {
    throw std::invalid_argument("unknown duration unit '" + unit +
                                "' in: " + text);
  }
  return std::chrono::nanoseconds(static_cast<std::int64_t>(std::llround(ns)));
}

Flags& Flags::define(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  auto [it, inserted] =
      entries_.emplace(name, Entry{default_value, default_value, help});
  if (!inserted) {
    throw std::invalid_argument("duplicate flag: --" + name);
  }
  order_.push_back(name);
  return *this;
}

Flags& Flags::define_int(const std::string& name, std::int64_t default_value,
                         const std::string& help) {
  return define(name, std::to_string(default_value), help);
}

Flags& Flags::define_double(const std::string& name, double default_value,
                            const std::string& help) {
  std::ostringstream os;
  os << default_value;
  return define(name, os.str(), help);
}

Flags& Flags::define_bool(const std::string& name, bool default_value,
                          const std::string& help) {
  return define(name, default_value ? "true" : "false", help);
}

Flags& Flags::define_duration(const std::string& name,
                              const std::string& default_value,
                              const std::string& help) {
  (void)parse_duration(default_value);  // defaults must themselves parse
  return define(name, default_value, help);
}

Flags& Flags::define_workers(std::int64_t default_value) {
  return define_int("workers", default_value,
                    "solver worker threads (0 = hardware concurrency)");
}

Flags& Flags::define_log_level() {
  return define("log-level", "",
                "stderr log level: debug|info|warn|error|off (empty = keep "
                "the DAGSFC_LOG_LEVEL / built-in default)");
}

void Flags::apply_log_level() const {
  const std::string& v = entry("log-level").value;
  if (v.empty()) return;
  const std::optional<LogLevel> level = parse_log_level(v);
  if (!level) {
    throw std::invalid_argument(
        "flag --log-level must be debug|info|warn|error|off, got: " + v);
  }
  set_log_level(*level);
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = entries_.find(name);
      if (it == entries_.end()) {
        throw std::invalid_argument("unknown flag: --" + name);
      }
      const bool is_bool = it->second.default_value == "true" ||
                           it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          throw std::invalid_argument("missing value for --" + name);
        }
        value = argv[++i];
      }
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
    it->second.value = value;
  }
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    os << "  --" << name << " (default: " << e.default_value << ")\n      "
       << e.help << '\n';
  }
  return os.str();
}

const Flags::Entry& Flags::entry(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("flag not defined: --" + name);
  }
  return it->second;
}

const std::string& Flags::get(const std::string& name) const {
  return entry(name).value;
}

std::int64_t Flags::get_int(const std::string& name) const {
  const std::string& v = entry(name).value;
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + " is not an integer: " + v);
  }
  return out;
}

double Flags::get_double(const std::string& name) const {
  const std::string& v = entry(name).value;
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("flag --" + name + " is not a number: " + v);
  }
  return out;
}

bool Flags::get_bool(const std::string& name) const {
  const std::string& v = entry(name).value;
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::invalid_argument("flag --" + name + " is not a boolean: " + v);
}

std::chrono::nanoseconds Flags::get_duration(const std::string& name) const {
  try {
    return parse_duration(entry(name).value);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("flag --" + name + ": " + e.what());
  }
}

std::size_t Flags::get_workers() const {
  const std::int64_t n = get_int("workers");
  if (n < 0) {
    throw std::invalid_argument("flag --workers must be >= 0");
  }
  if (n > 0) return static_cast<std::size_t>(n);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace dagsfc
