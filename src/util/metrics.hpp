#pragma once
/// \file metrics.hpp
/// The unified telemetry plane: a MetricRegistry of named Counter / Gauge /
/// Histogram instruments with stable `name{label="value"}` identity and two
/// byte-stable exposition formats — Prometheus text and JSON.
///
/// Hot-path contract: incrementing an instrument takes zero locks and zero
/// heap allocations. Counters stripe their value across 16 cache-line-sized
/// cells (each thread picks a fixed stripe, relaxed fetch_add) and are
/// summed on snapshot. Gauges are a single relaxed atomic double (set) with
/// a CAS loop for add. Histograms are deliberately NOT striped: bucket
/// counts and the sample count are relaxed atomics (exact under any
/// interleaving), but the running float sum/min/max go through CAS loops on
/// one shared cell, so the sum is bit-deterministic exactly when the
/// observation order is — the closed-loop serve driver's one-in-flight
/// regime — and merely order-sensitive-in-the-last-ulp under real
/// contention. Striped histograms would break the serve layer's bitwise
/// snapshot-equality tests (shards merge in scheduling order).
///
/// Naming convention (linted at registration): `dagsfc_[a-z0-9_]+` with the
/// conventional Prometheus unit suffixes `_total` (counters), `_seconds`,
/// `_bytes`, `_ratio`. Labels discriminate instances (`algo="mbbe"`,
/// `phase="mbbe/forward"`); the (name, sorted labels) pair is the identity,
/// and registering the same identity twice returns the same instrument.
///
/// Exposition is rendered from a RegistrySnapshot whose samples are sorted
/// by (name, labels), so the bytes depend only on the registered set and
/// the values — never on registration or increment order.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace dagsfc::util {

/// Sorted, duplicate-free (key, value) pairs; part of instrument identity.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// True iff \p name matches ^dagsfc_[a-z0-9_]+$ — the registry's lint,
/// enforced at registration so the namespace stays Prometheus-clean.
[[nodiscard]] bool valid_metric_name(const std::string& name) noexcept;

/// Shared percent rendering ("97.3%") used by core/report's inline text and
/// the sweep detail table, so cache hit-rates print identically everywhere.
/// \p fraction is the 0..1 ratio.
[[nodiscard]] std::string format_percent(double fraction);

/// One histogram bucket's exemplar: the trace id of the worst (largest)
/// value observed in that bucket via observe_exemplar(). Links the metrics
/// plane to the flight recorder: a scrape answers "which request made p99
/// bad?" with an id the trace dump can be grepped for.
struct HistogramExemplar {
  std::size_t bucket = 0;      ///< bucket index in the histogram layout
  double value = 0.0;          ///< worst value seen in the bucket
  std::uint64_t trace_id = 0;  ///< caller-supplied id (serve: request id)
};

namespace detail {

inline constexpr std::size_t kCounterStripes = 16;

/// One cache line per stripe so concurrent increments from different
/// threads never bounce a line between cores.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> v{0};
};

struct CounterState {
  CounterCell cells[kCounterStripes];
  [[nodiscard]] std::uint64_t sum() const noexcept;
};

struct GaugeState {
  std::atomic<double> v{0.0};
};

/// Shared (unstriped) histogram cells — see the file comment for why.
class HistogramState {
 public:
  HistogramState(double min_bound, double max_bound,
                 std::size_t buckets_per_decade);

  void observe(double x) noexcept;
  /// observe(x) plus a per-bucket CAS-max exemplar: if \p x is the largest
  /// value this bucket has seen, \p trace_id becomes the bucket's exemplar.
  /// Exemplars live only here (registry side), never in util::Histogram, so
  /// snapshot() stays bitwise-comparable with exemplars on or off. Under a
  /// racing pair of observers the stored id can transiently belong to the
  /// runner-up — exemplars are debugging breadcrumbs, not ground truth.
  void observe_exemplar(double x, std::uint64_t trace_id) noexcept;
  /// Materializes the atomic cells into the bitwise-comparable Histogram.
  [[nodiscard]] Histogram snapshot() const;
  /// Exemplars for every bucket that has one, in bucket order.
  [[nodiscard]] std::vector<HistogramExemplar> exemplars() const;
  [[nodiscard]] const Histogram& layout() const noexcept { return layout_; }

 private:
  struct ExemplarCell {
    /// -inf until the first exemplar lands, so any real value wins the CAS.
    std::atomic<double> value{-std::numeric_limits<double>::infinity()};
    std::atomic<std::uint64_t> trace_id{0};
  };

  const Histogram layout_;  ///< never added to; bucket math + layout identity
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::vector<ExemplarCell> exemplars_;
  std::atomic<std::uint64_t> n_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// The calling thread's counter stripe: a thread_local slot dealt once from
/// a global sequence, so increments are spread without hashing thread ids.
[[nodiscard]] std::size_t counter_stripe() noexcept;

}  // namespace detail

class MetricRegistry;

/// Monotonic event count. Handles are cheap value types pointing at
/// registry-owned state; a default-constructed handle is a no-op sink.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const noexcept;
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class MetricRegistry;
  explicit Counter(detail::CounterState* s) noexcept : state_(s) {}
  detail::CounterState* state_ = nullptr;
};

/// Instantaneous level (queue depth, busy workers, cumulative seconds).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept;
  void add(double delta) const noexcept;
  [[nodiscard]] double value() const noexcept;

 private:
  friend class MetricRegistry;
  explicit Gauge(detail::GaugeState* s) noexcept : state_(s) {}
  detail::GaugeState* state_ = nullptr;
};

/// Log-bucketed value distribution; snapshot() yields a util::Histogram
/// with the registered layout.
class HistogramMetric {
 public:
  HistogramMetric() = default;
  void observe(double x) const noexcept;
  /// observe(x) that also tags the bucket's worst-value exemplar with
  /// \p trace_id — see detail::HistogramState::observe_exemplar.
  void observe_exemplar(double x, std::uint64_t trace_id) const noexcept;
  [[nodiscard]] Histogram snapshot() const;

 private:
  friend class MetricRegistry;
  explicit HistogramMetric(detail::HistogramState* s) noexcept : state_(s) {}
  detail::HistogramState* state_ = nullptr;
};

/// One instrument's value at snapshot time. Only the field matching `kind`
/// is meaningful.
struct MetricSample {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t counter = 0;
  double gauge = 0.0;
  Histogram histogram;
  /// Histogram-only: per-bucket worst-request exemplars. Rendered in the
  /// JSON exposition; the Prometheus 0.0.4 text format has no exemplar
  /// syntax, so the text bytes are unchanged whether exemplars exist.
  std::vector<HistogramExemplar> exemplars;
};

/// Point-in-time copy of every instrument, sorted by (name, labels).
struct RegistrySnapshot {
  std::vector<MetricSample> samples;

  [[nodiscard]] const MetricSample* find(const std::string& name,
                                         const MetricLabels& labels = {}) const;
  /// 0 / 0.0 when the instrument is absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            const MetricLabels& labels = {})
      const noexcept;
  [[nodiscard]] double gauge_value(const std::string& name,
                                   const MetricLabels& labels = {})
      const noexcept;

  /// Prometheus text exposition format 0.0.4. Deterministic byte-for-byte
  /// for a given set of (identity, value) pairs.
  [[nodiscard]] std::string prometheus() const;
  /// Single-line JSON document `{"metrics":[...]}` (util::json rendering,
  /// so numbers are deterministic too).
  [[nodiscard]] std::string json() const;
};

/// The instrument store. register-or-lookup methods are mutex-guarded (cold
/// path); the returned handles touch only their own atomic state.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registers (or looks up) an instrument. Throws ContractViolation on a
  /// name failing valid_metric_name(), duplicate label keys, or an identity
  /// already registered as a different kind (or histogram layout).
  Counter counter(const std::string& name, MetricLabels labels = {});
  Gauge gauge(const std::string& name, MetricLabels labels = {});
  HistogramMetric histogram(const std::string& name, MetricLabels labels = {},
                            double min_bound = 1e-3, double max_bound = 1e9,
                            std::size_t buckets_per_decade = 16);

  [[nodiscard]] RegistrySnapshot snapshot() const;
  [[nodiscard]] std::string expose_prometheus() const;
  [[nodiscard]] std::string expose_json() const;

  /// The process-wide registry (solver phase meters, path-query roll-ups).
  /// Leaked on purpose so instruments outlive every static/thread_local
  /// destructor that might still increment them at exit.
  [[nodiscard]] static MetricRegistry& global();

 private:
  struct Key {
    std::string name;
    MetricLabels labels;
    [[nodiscard]] bool operator<(const Key& o) const noexcept {
      return name != o.name ? name < o.name : labels < o.labels;
    }
  };
  struct Instrument {
    MetricKind kind = MetricKind::Counter;
    std::unique_ptr<detail::CounterState> counter;
    std::unique_ptr<detail::GaugeState> gauge;
    std::unique_ptr<detail::HistogramState> histogram;
  };

  Instrument& lookup(const std::string& name, MetricLabels&& labels,
                     MetricKind kind);

  mutable std::mutex mu_;
  std::map<Key, Instrument> instruments_;
};

/// Periodic delta reporter: snapshots \p registry every \p period and hands
/// (current, previous) to the callback — by default a DAGSFC_INFO line of
/// the instruments that moved (format_deltas). report_now() forces a tick
/// synchronously (tests, final flush).
class MetricsReporter {
 public:
  using Callback =
      std::function<void(const RegistrySnapshot& current,
                         const RegistrySnapshot& previous)>;

  MetricsReporter(const MetricRegistry& registry,
                  std::chrono::nanoseconds period, Callback callback = {});
  ~MetricsReporter();

  MetricsReporter(const MetricsReporter&) = delete;
  MetricsReporter& operator=(const MetricsReporter&) = delete;

  void report_now();
  /// Idempotent; joins the reporter thread.
  void stop();

  /// "name{k=\"v\"} +5; name2=3.5" for every instrument whose value moved
  /// between the snapshots; empty when nothing did.
  [[nodiscard]] static std::string format_deltas(const RegistrySnapshot& cur,
                                                 const RegistrySnapshot& prev);

 private:
  void loop();
  void report_locked();

  const MetricRegistry* registry_;
  const std::chrono::nanoseconds period_;
  Callback callback_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  RegistrySnapshot prev_;
  std::thread thread_;
};

/// Cumulative wall-time meter for one named phase:
/// `dagsfc_phase_seconds{phase=...}` (gauge, busy seconds) and
/// `dagsfc_phase_calls_total{phase=...}`. The DAGSFC_TRACE_SCOPE macro
/// instantiates one per site as a function-local static, so the registry
/// lookup happens once per site, not per call.
class PhaseMeter {
 public:
  PhaseMeter(MetricRegistry& registry, const std::string& phase);
  /// Meters into MetricRegistry::global().
  explicit PhaseMeter(const std::string& phase);

  void record(double seconds) const noexcept {
    seconds_.add(seconds);
    calls_.inc();
  }

 private:
  Gauge seconds_;
  Counter calls_;
};

/// RAII timer feeding a PhaseMeter at scope exit.
class PhaseTimer {
 public:
  explicit PhaseTimer(const PhaseMeter& meter) noexcept
      : meter_(&meter), t0_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    meter_->record(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0_)
                       .count());
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  const PhaseMeter* meter_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace dagsfc::util
