#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dagsfc {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.959963985 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  DAGSFC_CHECK(!sorted.empty());
  DAGSFC_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = percentile_sorted(samples, 0.50);
  s.p95 = percentile_sorted(samples, 0.95);
  return s;
}

}  // namespace dagsfc
