#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace dagsfc {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.959963985 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  DAGSFC_CHECK(!sorted.empty());
  DAGSFC_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = percentile_sorted(samples, 0.50);
  s.p95 = percentile_sorted(samples, 0.95);
  return s;
}

Histogram::Histogram(double min_bound, double max_bound,
                     std::size_t buckets_per_decade)
    : min_bound_(min_bound), max_bound_(max_bound) {
  DAGSFC_CHECK(min_bound > 0.0);
  DAGSFC_CHECK(max_bound > min_bound);
  DAGSFC_CHECK(buckets_per_decade >= 1);
  log_min_ = std::log10(min_bound);
  inv_log_step_ = static_cast<double>(buckets_per_decade);
  const double decades = std::log10(max_bound) - log_min_;
  spanned_ = static_cast<std::size_t>(std::ceil(decades * inv_log_step_));
  DAGSFC_CHECK(spanned_ >= 1);
  counts_.assign(spanned_ + 2, 0);  // + underflow + overflow
}

std::size_t Histogram::bucket_of(double x) const noexcept {
  if (!(x >= min_bound_)) return 0;  // underflow; catches NaN too
  if (x >= max_bound_) return counts_.size() - 1;
  const double pos = (std::log10(x) - log_min_) * inv_log_step_;
  auto b = static_cast<std::size_t>(pos);
  if (b >= spanned_) b = spanned_ - 1;  // guard rounding at the top edge
  return b + 1;
}

void Histogram::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  ++counts_[bucket_of(x)];
}

bool Histogram::same_layout(const Histogram& other) const noexcept {
  return min_bound_ == other.min_bound_ && max_bound_ == other.max_bound_ &&
         counts_.size() == other.counts_.size();
}

void Histogram::merge(const Histogram& other) {
  DAGSFC_CHECK_MSG(same_layout(other), "histogram layout mismatch");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  sum_ += other.sum_;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
}

std::uint64_t Histogram::bucket_count(std::size_t b) const {
  DAGSFC_CHECK(b < counts_.size());
  return counts_[b];
}

std::pair<double, double> Histogram::bucket_bounds(std::size_t b) const {
  DAGSFC_CHECK(b < counts_.size());
  if (b == 0) {
    return {-std::numeric_limits<double>::infinity(), min_bound_};
  }
  if (b == counts_.size() - 1) {
    return {max_bound_, std::numeric_limits<double>::infinity()};
  }
  const double lo =
      std::pow(10.0, log_min_ + static_cast<double>(b - 1) / inv_log_step_);
  const double hi =
      std::pow(10.0, log_min_ + static_cast<double>(b) / inv_log_step_);
  return {lo, std::min(hi, max_bound_)};
}

Histogram Histogram::from_parts(const Histogram& layout,
                                std::vector<std::uint64_t> counts,
                                std::uint64_t n, double sum, double min,
                                double max) {
  Histogram h = layout;
  DAGSFC_CHECK_MSG(counts.size() == h.counts_.size(),
                   "from_parts bucket count mismatch");
  h.counts_ = std::move(counts);
  h.n_ = n;
  h.sum_ = n ? sum : 0.0;
  h.min_ = n ? min : 0.0;
  h.max_ = n ? max : 0.0;
  return h;
}

double Histogram::quantile(double q) const {
  DAGSFC_CHECK(q >= 0.0 && q <= 1.0);
  if (n_ == 0) return 0.0;
  // Endpoints are exact (percentile_sorted convention: q=0 is the observed
  // minimum, q=1 the observed maximum).
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Rank of the requested quantile among the n_ ordered samples (0-based,
  // linear-interpolation convention matching percentile_sorted).
  const double rank = q * static_cast<double>(n_ - 1);
  std::uint64_t below = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const auto in_bucket = static_cast<double>(counts_[b]);
    if (rank < static_cast<double>(below) + in_bucket) {
      auto [lo, hi] = bucket_bounds(b);
      // Clamp open-ended bins to the observed extremes; interpolate the
      // rank's fractional position across the bucket's value range.
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi <= lo) return lo;
      const double frac =
          (rank - static_cast<double>(below) + 0.5) / in_bucket;
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    below += counts_[b];
  }
  return max_;  // unreachable in practice: rank < n_
}

}  // namespace dagsfc
