#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dagsfc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_mu);
  std::cerr << "[dagsfc " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace dagsfc
