#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace dagsfc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mu;

/// Applies DAGSFC_LOG_LEVEL before main() via a namespace-scope
/// initializer, so library users can turn Info logs on without recompiling
/// callers. Unset or invalid values leave the Warn default alone.
bool apply_env_level() {
  if (const std::optional<LogLevel> level = env_log_level()) {
    g_level.store(static_cast<int>(*level), std::memory_order_relaxed);
  }
  return true;
}
[[maybe_unused]] const bool g_env_applied = apply_env_level();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO ";
    case LogLevel::Warn:
      return "WARN ";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> parse_log_level(const std::string& text) {
  if (text == "debug") return LogLevel::Debug;
  if (text == "info") return LogLevel::Info;
  if (text == "warn") return LogLevel::Warn;
  if (text == "error") return LogLevel::Error;
  if (text == "off") return LogLevel::Off;
  return std::nullopt;
}

std::optional<LogLevel> env_log_level() {
  const char* raw = std::getenv("DAGSFC_LOG_LEVEL");
  if (raw == nullptr) return std::nullopt;
  return parse_log_level(raw);
}

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_mu);
  std::cerr << "[dagsfc " << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace dagsfc
