#include "util/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace dagsfc::util {

bool valid_metric_name(const std::string& name) noexcept {
  constexpr const char kPrefix[] = "dagsfc_";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.size() <= kPrefixLen) return false;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  for (std::size_t i = kPrefixLen; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

namespace detail {

std::uint64_t CounterState::sum() const noexcept {
  std::uint64_t total = 0;
  for (const CounterCell& cell : cells) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t counter_stripe() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % kCounterStripes;
}

namespace {

void atomic_add(std::atomic<double>& cell, double x) noexcept {
  double cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& cell, double x) noexcept {
  double cur = cell.load(std::memory_order_relaxed);
  while (x < cur && !cell.compare_exchange_weak(cur, x,
                                                std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& cell, double x) noexcept {
  double cur = cell.load(std::memory_order_relaxed);
  while (x > cur && !cell.compare_exchange_weak(cur, x,
                                                std::memory_order_relaxed)) {
  }
}

}  // namespace

HistogramState::HistogramState(double min_bound, double max_bound,
                               std::size_t buckets_per_decade)
    : layout_(min_bound, max_bound, buckets_per_decade),
      counts_(layout_.num_buckets()),
      exemplars_(layout_.num_buckets()),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void HistogramState::observe(double x) noexcept {
  counts_[layout_.bucket_of(x)].fetch_add(1, std::memory_order_relaxed);
  n_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

void HistogramState::observe_exemplar(double x,
                                      std::uint64_t trace_id) noexcept {
  observe(x);
  ExemplarCell& cell = exemplars_[layout_.bucket_of(x)];
  double cur = cell.value.load(std::memory_order_relaxed);
  // >= so a repeat of the current worst value refreshes the id too.
  while (x >= cur) {
    if (cell.value.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
      cell.trace_id.store(trace_id, std::memory_order_relaxed);
      break;
    }
  }
}

Histogram HistogramState::snapshot() const {
  std::vector<std::uint64_t> counts(counts_.size());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts[b] = counts_[b].load(std::memory_order_relaxed);
  }
  return Histogram::from_parts(layout_, std::move(counts),
                               n_.load(std::memory_order_relaxed),
                               sum_.load(std::memory_order_relaxed),
                               min_.load(std::memory_order_relaxed),
                               max_.load(std::memory_order_relaxed));
}

std::vector<HistogramExemplar> HistogramState::exemplars() const {
  std::vector<HistogramExemplar> out;
  for (std::size_t b = 0; b < exemplars_.size(); ++b) {
    const double v = exemplars_[b].value.load(std::memory_order_relaxed);
    if (v == -std::numeric_limits<double>::infinity()) continue;
    out.push_back(HistogramExemplar{
        b, v, exemplars_[b].trace_id.load(std::memory_order_relaxed)});
  }
  return out;
}

}  // namespace detail

void Counter::inc(std::uint64_t n) const noexcept {
  if (state_ == nullptr) return;
  state_->cells[detail::counter_stripe()].v.fetch_add(
      n, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  return state_ != nullptr ? state_->sum() : 0;
}

void Gauge::set(double v) const noexcept {
  if (state_ != nullptr) state_->v.store(v, std::memory_order_relaxed);
}

void Gauge::add(double delta) const noexcept {
  if (state_ != nullptr) detail::atomic_add(state_->v, delta);
}

double Gauge::value() const noexcept {
  return state_ != nullptr ? state_->v.load(std::memory_order_relaxed) : 0.0;
}

void HistogramMetric::observe(double x) const noexcept {
  if (state_ != nullptr) state_->observe(x);
}

void HistogramMetric::observe_exemplar(double x,
                                       std::uint64_t trace_id) const noexcept {
  if (state_ != nullptr) state_->observe_exemplar(x, trace_id);
}

Histogram HistogramMetric::snapshot() const {
  return state_ != nullptr ? state_->snapshot() : Histogram();
}

namespace {

/// Sorts by key and rejects duplicates/empty keys — labels are identity, so
/// {a,b} and {b,a} must collapse to one instrument.
MetricLabels canonical_labels(MetricLabels labels) {
  std::sort(labels.begin(), labels.end());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    DAGSFC_CHECK_MSG(!labels[i].first.empty(), "empty metric label key");
    DAGSFC_CHECK_MSG(i == 0 || labels[i].first != labels[i - 1].first,
                     "duplicate metric label key: " + labels[i].first);
  }
  return labels;
}

std::string render_label_set(const MetricLabels& labels,
                             const std::string* le = nullptr) {
  if (labels.empty() && le == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += json_escape(v);
    out += '"';
  }
  if (le != nullptr) {
    if (!first) out += ',';
    out += "le=\"";
    out += *le;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

MetricRegistry::Instrument& MetricRegistry::lookup(const std::string& name,
                                                   MetricLabels&& labels,
                                                   MetricKind kind) {
  DAGSFC_CHECK_MSG(valid_metric_name(name),
                   "metric name fails ^dagsfc_[a-z0-9_]+$ lint: " + name);
  Key key{name, canonical_labels(std::move(labels))};
  auto [it, inserted] = instruments_.try_emplace(std::move(key));
  if (inserted) {
    it->second.kind = kind;
  } else {
    DAGSFC_CHECK_MSG(it->second.kind == kind,
                     "metric re-registered as a different kind: " + name);
  }
  return it->second;
}

Counter MetricRegistry::counter(const std::string& name, MetricLabels labels) {
  std::lock_guard lock(mu_);
  Instrument& inst = lookup(name, std::move(labels), MetricKind::Counter);
  if (!inst.counter) inst.counter = std::make_unique<detail::CounterState>();
  return Counter(inst.counter.get());
}

Gauge MetricRegistry::gauge(const std::string& name, MetricLabels labels) {
  std::lock_guard lock(mu_);
  Instrument& inst = lookup(name, std::move(labels), MetricKind::Gauge);
  if (!inst.gauge) inst.gauge = std::make_unique<detail::GaugeState>();
  return Gauge(inst.gauge.get());
}

HistogramMetric MetricRegistry::histogram(const std::string& name,
                                          MetricLabels labels,
                                          double min_bound, double max_bound,
                                          std::size_t buckets_per_decade) {
  std::lock_guard lock(mu_);
  Instrument& inst = lookup(name, std::move(labels), MetricKind::Histogram);
  if (!inst.histogram) {
    inst.histogram = std::make_unique<detail::HistogramState>(
        min_bound, max_bound, buckets_per_decade);
  } else {
    DAGSFC_CHECK_MSG(
        inst.histogram->layout().same_layout(
            Histogram(min_bound, max_bound, buckets_per_decade)),
        "histogram re-registered with a different layout: " + name);
  }
  return HistogramMetric(inst.histogram.get());
}

RegistrySnapshot MetricRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  RegistrySnapshot out;
  out.samples.reserve(instruments_.size());
  // The map iterates in Key order, so samples arrive already sorted by
  // (name, labels) — the property the byte-stable expositions rest on.
  for (const auto& [key, inst] : instruments_) {
    MetricSample s;
    s.name = key.name;
    s.labels = key.labels;
    s.kind = inst.kind;
    switch (inst.kind) {
      case MetricKind::Counter:
        s.counter = inst.counter->sum();
        break;
      case MetricKind::Gauge:
        s.gauge = inst.gauge->v.load(std::memory_order_relaxed);
        break;
      case MetricKind::Histogram:
        s.histogram = inst.histogram->snapshot();
        s.exemplars = inst.histogram->exemplars();
        break;
    }
    out.samples.push_back(std::move(s));
  }
  return out;
}

std::string MetricRegistry::expose_prometheus() const {
  return snapshot().prometheus();
}

std::string MetricRegistry::expose_json() const { return snapshot().json(); }

MetricRegistry& MetricRegistry::global() {
  // Leaked: instruments must stay valid for code running during static and
  // thread_local destruction (worker-thread teardown, atexit log lines).
  static MetricRegistry* g = new MetricRegistry();
  return *g;
}

const MetricSample* RegistrySnapshot::find(const std::string& name,
                                           const MetricLabels& labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

std::uint64_t RegistrySnapshot::counter_value(
    const std::string& name, const MetricLabels& labels) const noexcept {
  const MetricSample* s = find(name, labels);
  return s != nullptr && s->kind == MetricKind::Counter ? s->counter : 0;
}

double RegistrySnapshot::gauge_value(const std::string& name,
                                     const MetricLabels& labels)
    const noexcept {
  const MetricSample* s = find(name, labels);
  return s != nullptr && s->kind == MetricKind::Gauge ? s->gauge : 0.0;
}

std::string RegistrySnapshot::prometheus() const {
  std::ostringstream os;
  const std::string* prev_name = nullptr;
  for (const MetricSample& s : samples) {
    if (prev_name == nullptr || *prev_name != s.name) {
      const char* type = s.kind == MetricKind::Counter   ? "counter"
                         : s.kind == MetricKind::Gauge   ? "gauge"
                                                         : "histogram";
      os << "# TYPE " << s.name << ' ' << type << '\n';
      prev_name = &s.name;
    }
    switch (s.kind) {
      case MetricKind::Counter:
        os << s.name << render_label_set(s.labels) << ' ' << s.counter
           << '\n';
        break;
      case MetricKind::Gauge:
        os << s.name << render_label_set(s.labels) << ' '
           << json_number(s.gauge) << '\n';
        break;
      case MetricKind::Histogram: {
        const Histogram& h = s.histogram;
        std::uint64_t cum = 0;
        for (std::size_t b = 0; b < h.num_buckets(); ++b) {
          cum += h.bucket_count(b);
          const std::string le = b + 1 == h.num_buckets()
                                     ? "+Inf"
                                     : json_number(h.bucket_bounds(b).second);
          os << s.name << "_bucket" << render_label_set(s.labels, &le) << ' '
             << cum << '\n';
        }
        os << s.name << "_sum" << render_label_set(s.labels) << ' '
           << json_number(h.sum()) << '\n';
        os << s.name << "_count" << render_label_set(s.labels) << ' '
           << h.count() << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string RegistrySnapshot::json() const {
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(s.name) << '"';
    if (!s.labels.empty()) {
      os << ",\"labels\":{";
      bool lf = true;
      for (const auto& [k, v] : s.labels) {
        if (!lf) os << ',';
        lf = false;
        os << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
      }
      os << '}';
    }
    switch (s.kind) {
      case MetricKind::Counter:
        os << ",\"type\":\"counter\",\"value\":" << s.counter;
        break;
      case MetricKind::Gauge:
        os << ",\"type\":\"gauge\",\"value\":" << json_number(s.gauge);
        break;
      case MetricKind::Histogram: {
        const Histogram& h = s.histogram;
        os << ",\"type\":\"histogram\",\"count\":" << h.count()
           << ",\"sum\":" << json_number(h.sum())
           << ",\"min\":" << json_number(h.min())
           << ",\"max\":" << json_number(h.max())
           << ",\"mean\":" << json_number(h.mean())
           << ",\"p50\":" << json_number(h.p50())
           << ",\"p95\":" << json_number(h.p95())
           << ",\"p99\":" << json_number(h.p99());
        if (!s.exemplars.empty()) {
          os << ",\"exemplars\":[";
          bool ef = true;
          for (const HistogramExemplar& e : s.exemplars) {
            if (!ef) os << ',';
            ef = false;
            const std::string le =
                e.bucket + 1 == h.num_buckets()
                    ? "+Inf"
                    : json_number(h.bucket_bounds(e.bucket).second);
            os << "{\"bucket\":" << e.bucket << ",\"le\":\"" << le
               << "\",\"value\":" << json_number(e.value)
               << ",\"trace_id\":" << e.trace_id << '}';
          }
          os << ']';
        }
        break;
      }
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

MetricsReporter::MetricsReporter(const MetricRegistry& registry,
                                 std::chrono::nanoseconds period,
                                 Callback callback)
    : registry_(&registry), period_(period), callback_(std::move(callback)) {
  DAGSFC_CHECK(period_.count() > 0);
  prev_ = registry_->snapshot();
  thread_ = std::thread([this] { loop(); });
}

MetricsReporter::~MetricsReporter() { stop(); }

void MetricsReporter::stop() {
  {
    std::lock_guard lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsReporter::loop() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, period_, [this] { return stop_; })) break;
    report_locked();
  }
}

void MetricsReporter::report_now() {
  std::lock_guard lock(mu_);
  report_locked();
}

void MetricsReporter::report_locked() {
  RegistrySnapshot cur = registry_->snapshot();
  if (callback_) {
    callback_(cur, prev_);
  } else {
    const std::string line = format_deltas(cur, prev_);
    if (!line.empty()) DAGSFC_INFO("metrics: " << line);
  }
  prev_ = std::move(cur);
}

std::string MetricsReporter::format_deltas(const RegistrySnapshot& cur,
                                           const RegistrySnapshot& prev) {
  std::ostringstream os;
  bool first = true;
  const auto sep = [&]() -> std::ostringstream& {
    if (!first) os << "; ";
    first = false;
    return os;
  };
  for (const MetricSample& s : cur.samples) {
    const MetricSample* p = prev.find(s.name, s.labels);
    const std::string id = s.name + render_label_set(s.labels);
    switch (s.kind) {
      case MetricKind::Counter: {
        const std::uint64_t before = p != nullptr ? p->counter : 0;
        if (s.counter != before) {
          sep() << id << " +" << (s.counter - before);
        }
        break;
      }
      case MetricKind::Gauge: {
        const double before = p != nullptr ? p->gauge : 0.0;
        if (s.gauge != before) sep() << id << '=' << json_number(s.gauge);
        break;
      }
      case MetricKind::Histogram: {
        const std::uint64_t before =
            p != nullptr ? p->histogram.count() : 0;
        if (s.histogram.count() != before) {
          sep() << id << " +" << (s.histogram.count() - before);
        }
        break;
      }
    }
  }
  return os.str();
}

PhaseMeter::PhaseMeter(MetricRegistry& registry, const std::string& phase)
    : seconds_(registry.gauge("dagsfc_phase_seconds", {{"phase", phase}})),
      calls_(
          registry.counter("dagsfc_phase_calls_total", {{"phase", phase}})) {}

PhaseMeter::PhaseMeter(const std::string& phase)
    : PhaseMeter(MetricRegistry::global(), phase) {}

}  // namespace dagsfc::util
