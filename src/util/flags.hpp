#pragma once
/// \file flags.hpp
/// Minimal command-line flag parsing for the bench and example binaries.
/// Supports --name=value and --name value forms, plus bare --flag for bools,
/// and typed accessors including durations ("250ms", "10s") and a shared
/// --workers helper that resolves 0 to the hardware concurrency.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dagsfc {

/// Parses a human-readable duration: a non-negative decimal number followed
/// by a unit suffix — ns, us, ms, s, m (minutes), or h. The unit is
/// mandatory ("250ms", "1.5s", "10m"); a bare number, unknown suffix,
/// negative value, or trailing garbage throws std::invalid_argument.
[[nodiscard]] std::chrono::nanoseconds parse_duration(const std::string& text);

class Flags {
 public:
  /// Registers a flag with a default and a help string. Returns *this so
  /// registrations chain.
  Flags& define(const std::string& name, const std::string& default_value,
                const std::string& help);
  Flags& define_int(const std::string& name, std::int64_t default_value,
                    const std::string& help);
  Flags& define_double(const std::string& name, double default_value,
                       const std::string& help);
  Flags& define_bool(const std::string& name, bool default_value,
                     const std::string& help);
  /// Duration-valued flag; the default is given in flag syntax ("250ms").
  Flags& define_duration(const std::string& name,
                         const std::string& default_value,
                         const std::string& help);
  /// Registers the standard `--workers` flag (0 = hardware concurrency),
  /// shared by dagsfc_serve and bench_serve_throughput.
  Flags& define_workers(std::int64_t default_value = 0);
  /// Registers the standard `--log-level` flag (debug|info|warn|error|off;
  /// empty = keep the DAGSFC_LOG_LEVEL / built-in default).
  Flags& define_log_level();

  /// Parses argv. Throws std::invalid_argument on unknown flags or malformed
  /// values. Recognizes --help by setting help_requested().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] std::string usage(const std::string& program) const;

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] std::chrono::nanoseconds get_duration(
      const std::string& name) const;
  /// Resolved worker count: the --workers value, with 0 mapped to
  /// std::thread::hardware_concurrency() (at least 1). Negative throws.
  [[nodiscard]] std::size_t get_workers() const;
  /// Applies --log-level via set_log_level() when non-empty; a value
  /// outside the vocabulary throws std::invalid_argument.
  void apply_log_level() const;

 private:
  struct Entry {
    std::string value;
    std::string default_value;
    std::string help;
  };
  const Entry& entry(const std::string& name) const;

  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
  bool help_ = false;
};

}  // namespace dagsfc
