#pragma once
/// \file flags.hpp
/// Minimal command-line flag parsing for the bench and example binaries.
/// Supports --name=value and --name value forms, plus bare --flag for bools.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dagsfc {

class Flags {
 public:
  /// Registers a flag with a default and a help string. Returns *this so
  /// registrations chain.
  Flags& define(const std::string& name, const std::string& default_value,
                const std::string& help);
  Flags& define_int(const std::string& name, std::int64_t default_value,
                    const std::string& help);
  Flags& define_double(const std::string& name, double default_value,
                       const std::string& help);
  Flags& define_bool(const std::string& name, bool default_value,
                     const std::string& help);

  /// Parses argv. Throws std::invalid_argument on unknown flags or malformed
  /// values. Recognizes --help by setting help_requested().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] std::string usage(const std::string& program) const;

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

 private:
  struct Entry {
    std::string value;
    std::string default_value;
    std::string help;
  };
  const Entry& entry(const std::string& name) const;

  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
  bool help_ = false;
};

}  // namespace dagsfc
