#include "util/thread_pool.hpp"

#include <algorithm>

namespace dagsfc {

namespace {
thread_local std::uint32_t t_worker_id = 0;  // 0 = not a pool worker
}  // namespace

std::uint32_t ThreadPool::current_worker_id() noexcept { return t_worker_id; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_id = static_cast<std::uint32_t>(i + 1);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&body, i] { body(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dagsfc
