#include "util/trace.hpp"

#include <algorithm>
#include <chrono>

#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace dagsfc::util {

namespace {

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity, Clock clock)
    : capacity_(capacity == 0 ? 1 : capacity), clock_(clock) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
  if (clock_ == Clock::Wall) epoch_us_ = steady_us();
}

std::uint64_t TraceRecorder::stamp() {
  // Callers hold mu_.
  if (clock_ == Clock::Logical) return seq_++;
  ++seq_;
  return steady_us() - epoch_us_;
}

void TraceRecorder::record(TraceEvent e) {
  if (!enabled_) return;
  e.tid = ThreadPool::current_worker_id();
  std::lock_guard lock(mu_);
  if (e.ts == 0) e.ts = stamp();
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceRecorder::instant(std::string name, std::string cat) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.phase = 'i';
  record(std::move(e));
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mu_);
  return ring_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lock(mu_);
  return dropped_;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  seq_ = 0;
}

TraceSpan::TraceSpan(TraceRecorder* rec, std::string name, std::string cat)
    : rec_(rec != nullptr && rec->enabled() ? rec : nullptr),
      name_(std::move(name)),
      cat_(std::move(cat)) {
  if (rec_ == nullptr) return;
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.phase = 'B';
  rec_->record(std::move(e));
}

TraceSpan::~TraceSpan() {
  if (rec_ == nullptr) return;
  TraceEvent e;
  e.name = std::move(name_);
  e.cat = std::move(cat_);
  e.phase = 'E';
  rec_->record(std::move(e));
}

std::string to_chrome_trace(std::span<const TraceEvent> events,
                            std::uint32_t pid) {
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"";
    out += json_escape(e.cat.empty() ? std::string("default") : e.cat);
    out += "\",\"ph\":\"";
    out.push_back(e.phase);
    out += "\",\"ts\":";
    out += json_number(static_cast<double>(e.ts));
    if (e.phase == 'X') {
      out += ",\"dur\":";
      out += json_number(static_cast<double>(e.dur));
    }
    out += ",\"pid\":";
    out += json_number(static_cast<double>(pid));
    out += ",\"tid\":";
    out += json_number(static_cast<double>(e.tid));
    if (!e.num_args.empty() || !e.str_args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.num_args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        out += json_escape(k);
        out += "\":";
        out += json_number(v);
      }
      for (const auto& [k, v] : e.str_args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"";
        out += json_escape(k);
        out += "\":\"";
        out += json_escape(v);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

namespace {
std::unique_ptr<TraceRecorder> g_recorder;  // install/uninstall: main thread
}  // namespace

TraceRecorder* global_trace() noexcept { return g_recorder.get(); }

TraceRecorder& install_global_trace(std::size_t capacity,
                                    TraceRecorder::Clock clock) {
  g_recorder = std::make_unique<TraceRecorder>(capacity, clock);
  return *g_recorder;
}

void uninstall_global_trace() noexcept { g_recorder.reset(); }

}  // namespace dagsfc::util
