#pragma once
/// \file table.hpp
/// Result tables rendered as aligned ASCII (for terminals) and CSV (for
/// plotting). Every bench binary prints its figure's series through this.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dagsfc {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 2);
  Table& cell(std::size_t value);
  Table& cell(long long value);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return columns_.size();
  }

  /// Aligned ASCII rendering with a header rule.
  [[nodiscard]] std::string ascii() const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  [[nodiscard]] std::string csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dagsfc
