#pragma once
/// \file span_recorder.hpp
/// Always-on request-lifecycle span substrate: fixed-size span records in
/// lock-free per-worker ring buffers, merged on dump.
///
/// This sits below serve::RequestTrace the way util/trace.hpp sits below
/// core::EmbeddingTrace, but with the opposite cost profile: the Chrome
/// recorder takes a mutex and heap-allocates strings per event (fine for
/// opt-in solver tracing), while the span recorder must run on the serving
/// hot path for *every* request. So records are PODs of seven 64-bit words,
/// each lane is written by exactly one worker thread, and emission is a
/// handful of relaxed atomic stores plus one release store of the lane's
/// publication count — no locks, no allocation, no strings.
///
/// Concurrency contract:
///   * one writer per lane (the serve/shard worker owning that slot);
///   * any thread may collect() at any time. The reader snapshots a lane's
///     publication count (acquire), copies the published slots (relaxed
///     word loads), re-reads the count, and discards every record the
///     writer may have started overwriting in between. Torn records are
///     therefore *discarded by index arithmetic*, never returned — and
///     because every slot word is an atomic, the discipline is exactly as
///     data-race-free as TSan demands, not just "benign".
///
/// When a lane wraps, the oldest records are overwritten and counted as
/// dropped — tracing every request must never grow without bound inside a
/// long-running service. Timestamps are steady-clock nanoseconds since the
/// recorder's construction, so spans from different lanes merge onto one
/// timeline.

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dagsfc::util {

/// One decoded span. `kind` / `detail` are a caller-defined vocabulary
/// (the serve layer's lives in serve/trace.hpp); the recorder only moves
/// the bits.
struct SpanRecord {
  std::uint64_t trace_id = 0;  ///< request id — groups spans into a trace
  std::uint8_t kind = 0;       ///< span vocabulary (queue wait, solve, ...)
  std::uint8_t detail = 0;     ///< kind-specific classification
  std::uint16_t attempt = 0;   ///< solve/commit attempt number
  std::uint32_t lane = 0;      ///< filled in by the recorder on collect()
  std::uint64_t t0_ns = 0;     ///< span start, ns since recorder epoch
  std::uint64_t t1_ns = 0;     ///< span end, ns since recorder epoch
  std::uint64_t arg = 0;       ///< kind-specific payload (epoch, shard mask)
  double value = 0.0;          ///< kind-specific payload (cost, latency)
};

class SpanRecorder {
 public:
  /// \p lanes single-writer rings of \p capacity_per_lane records each.
  SpanRecorder(std::size_t lanes, std::size_t capacity_per_lane);

  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  [[nodiscard]] std::size_t num_lanes() const noexcept {
    return lanes_.size();
  }
  [[nodiscard]] std::size_t lane_capacity() const noexcept {
    return capacity_;
  }

  /// Steady-clock nanoseconds since the recorder was constructed — the
  /// timebase of every SpanRecord this recorder holds.
  [[nodiscard]] std::uint64_t now_ns() const noexcept;
  /// Same timebase for an externally captured steady_clock instant
  /// (e.g. a request's submit time). Clamps to 0 before the epoch.
  [[nodiscard]] std::uint64_t to_ns(
      std::chrono::steady_clock::time_point t) const noexcept;

  /// Appends \p r to \p lane's ring, overwriting the oldest record when
  /// full. Allocation-free and lock-free; the caller must be \p lane's
  /// single writer. r.lane is ignored (collect() stamps it).
  void emit(std::size_t lane, const SpanRecord& r) noexcept;

  /// Total records ever emitted into / overwritten out of \p lane.
  [[nodiscard]] std::uint64_t emitted(std::size_t lane) const noexcept;
  [[nodiscard]] std::uint64_t dropped(std::size_t lane) const noexcept;

  /// Merged copy of every lane's surviving records, sorted by
  /// (t0_ns, lane, per-lane order) so the dump is one coherent timeline.
  [[nodiscard]] std::vector<SpanRecord> collect() const;

 private:
  // Seven words per slot: trace_id, packed(kind|detail|attempt), t0, t1,
  // arg, value bits, plus one spare that keeps the slot a power-of-two-ish
  // stride. Every word is a relaxed atomic — see the file comment.
  static constexpr std::size_t kWords = 7;
  struct Slot {
    std::array<std::atomic<std::uint64_t>, kWords> w;
  };
  /// One ring. alignas keeps one lane's publication counter off its
  /// neighbours' cache lines (each lane has a different writer thread).
  struct alignas(64) Lane {
    std::vector<Slot> slots;
    std::atomic<std::uint64_t> pub{0};  ///< records published so far
  };

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace dagsfc::util
