#pragma once
/// \file thread_pool.hpp
/// Fixed-size thread pool plus a blocking parallel_for helper.
///
/// The Monte-Carlo harness runs 100 independent trials per data point; each
/// trial embeds the same DAG-SFC structure into the same network with a fresh
/// random SFC. Trials share no mutable state (each gets its own capacity
/// ledger), so a plain fork-join pool is the right tool — no work stealing
/// needed, the trials are coarse and uniform.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dagsfc {

class ThreadPool {
 public:
  /// Spawns \p threads workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Stable lane id of the calling thread: workers of any pool report
  /// 1..size() (assigned at spawn); threads outside a pool — including the
  /// main thread — report 0. Trace events use this instead of OS thread
  /// ids so traces are comparable across runs.
  [[nodiscard]] static std::uint32_t current_worker_id() noexcept;

  /// Enqueues a task; the returned future propagates exceptions.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(i) for i in [0, n) across \p pool, blocking until all complete.
/// The first exception thrown by any body is rethrown on the caller.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

}  // namespace dagsfc
