#include "util/span_recorder.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace dagsfc::util {

namespace {

// Word layout inside a slot. kind/detail/attempt share one word; the
// remaining 32 bits are reserved (lane is implicit in the ring index).
constexpr std::size_t kWordTraceId = 0;
constexpr std::size_t kWordPacked = 1;
constexpr std::size_t kWordT0 = 2;
constexpr std::size_t kWordT1 = 3;
constexpr std::size_t kWordArg = 4;
constexpr std::size_t kWordValue = 5;

std::uint64_t pack(const SpanRecord& r) noexcept {
  return static_cast<std::uint64_t>(r.kind) |
         (static_cast<std::uint64_t>(r.detail) << 8) |
         (static_cast<std::uint64_t>(r.attempt) << 16);
}

void unpack(std::uint64_t w, SpanRecord& r) noexcept {
  r.kind = static_cast<std::uint8_t>(w & 0xff);
  r.detail = static_cast<std::uint8_t>((w >> 8) & 0xff);
  r.attempt = static_cast<std::uint16_t>((w >> 16) & 0xffff);
}

}  // namespace

SpanRecorder::SpanRecorder(std::size_t lanes, std::size_t capacity_per_lane)
    : capacity_(capacity_per_lane), epoch_(std::chrono::steady_clock::now()) {
  DAGSFC_CHECK_MSG(lanes > 0, "SpanRecorder needs at least one lane");
  DAGSFC_CHECK_MSG(capacity_per_lane > 0,
                   "SpanRecorder lane capacity must be positive");
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->slots = std::vector<Slot>(capacity_);
    lanes_.push_back(std::move(lane));
  }
}

std::uint64_t SpanRecorder::now_ns() const noexcept {
  return to_ns(std::chrono::steady_clock::now());
}

std::uint64_t SpanRecorder::to_ns(
    std::chrono::steady_clock::time_point t) const noexcept {
  if (t <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
          .count());
}

void SpanRecorder::emit(std::size_t lane, const SpanRecord& r) noexcept {
  DAGSFC_CHECK_MSG(lane < lanes_.size(), "SpanRecorder lane out of range");
  Lane& l = *lanes_[lane];
  const std::uint64_t n = l.pub.load(std::memory_order_relaxed);
  Slot& s = l.slots[n % capacity_];
  s.w[kWordTraceId].store(r.trace_id, std::memory_order_relaxed);
  s.w[kWordPacked].store(pack(r), std::memory_order_relaxed);
  s.w[kWordT0].store(r.t0_ns, std::memory_order_relaxed);
  s.w[kWordT1].store(r.t1_ns, std::memory_order_relaxed);
  s.w[kWordArg].store(r.arg, std::memory_order_relaxed);
  s.w[kWordValue].store(std::bit_cast<std::uint64_t>(r.value),
                        std::memory_order_relaxed);
  // Release-publish: a reader that acquires pub >= n+1 sees the words above.
  l.pub.store(n + 1, std::memory_order_release);
}

std::uint64_t SpanRecorder::emitted(std::size_t lane) const noexcept {
  DAGSFC_CHECK_MSG(lane < lanes_.size(), "SpanRecorder lane out of range");
  return lanes_[lane]->pub.load(std::memory_order_relaxed);
}

std::uint64_t SpanRecorder::dropped(std::size_t lane) const noexcept {
  const std::uint64_t n = emitted(lane);
  return n > capacity_ ? n - capacity_ : 0;
}

std::vector<SpanRecord> SpanRecorder::collect() const {
  struct Tagged {
    SpanRecord rec;
    std::uint64_t seq;  // per-lane emission index, for a stable tiebreak
  };
  std::vector<Tagged> out;
  for (std::size_t li = 0; li < lanes_.size(); ++li) {
    const Lane& l = *lanes_[li];
    const std::uint64_t end = l.pub.load(std::memory_order_acquire);
    const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
    std::vector<Tagged> lane_out;
    lane_out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t i = begin; i < end; ++i) {
      const Slot& s = l.slots[i % capacity_];
      Tagged t;
      t.seq = i;
      t.rec.trace_id = s.w[kWordTraceId].load(std::memory_order_relaxed);
      unpack(s.w[kWordPacked].load(std::memory_order_relaxed), t.rec);
      t.rec.lane = static_cast<std::uint32_t>(li);
      t.rec.t0_ns = s.w[kWordT0].load(std::memory_order_relaxed);
      t.rec.t1_ns = s.w[kWordT1].load(std::memory_order_relaxed);
      t.rec.arg = s.w[kWordArg].load(std::memory_order_relaxed);
      t.rec.value = std::bit_cast<double>(
          s.w[kWordValue].load(std::memory_order_relaxed));
      lane_out.push_back(t);
    }
    // Re-read pub: the writer may have advanced while we copied. Entry i
    // lives in slot i % capacity, which the writer starts rewriting when it
    // begins entry i + capacity. With pub == end2, entry end2 may be
    // mid-write, so every i <= end2 - capacity is suspect — drop it.
    const std::uint64_t end2 = l.pub.load(std::memory_order_acquire);
    const std::uint64_t safe_begin =
        end2 >= capacity_ ? end2 - capacity_ + 1 : 0;
    for (const Tagged& t : lane_out) {
      if (t.seq >= safe_begin) out.push_back(t);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.rec.t0_ns != b.rec.t0_ns)
                       return a.rec.t0_ns < b.rec.t0_ns;
                     if (a.rec.lane != b.rec.lane) return a.rec.lane < b.rec.lane;
                     return a.seq < b.seq;
                   });
  std::vector<SpanRecord> recs;
  recs.reserve(out.size());
  for (const Tagged& t : out) recs.push_back(t.rec);
  return recs;
}

}  // namespace dagsfc::util
