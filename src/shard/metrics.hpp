#pragma once
/// \file metrics.hpp
/// Telemetry of the sharded embedding service: the global outcome counters
/// of the flat serve plane, rebased onto the `dagsfc_shard_*` namespace,
/// plus the per-shard dimension — `dagsfc_shard_commits_total{shard="r"}`,
/// `dagsfc_shard_conflicts_total{shard="r"}` and the
/// `dagsfc_shard_queue_depth{shard="r"}` gauge — so /metrics shows where
/// commits land and which shard's footprints collide.
///
/// Same determinism contract as serve::ServiceMetrics: every counter
/// depends only on the multiset of recorded events, so the closed-loop
/// driver's metrics (per-shard ones included) are bit-identical across
/// worker counts.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "shard/ledger.hpp"
#include "util/metrics.hpp"

namespace dagsfc::shard {

struct ShardStatsSnapshot {
  std::uint64_t commits = 0;    ///< footprint writes into this shard
  std::uint64_t conflicts = 0;  ///< footprints this shard rejected
  double queue_depth = 0.0;     ///< jobs waiting on this shard's pool
};

/// Immutable copy of the sharded service's metrics at one instant.
struct ShardMetricsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t lost_conflict = 0;

  std::uint64_t fast_commits = 0;
  std::uint64_t stamp_commits = 0;
  std::uint64_t validated_commits = 0;
  std::uint64_t retries = 0;
  std::uint64_t releases = 0;
  /// Requests whose source and destination live in different regions.
  std::uint64_t cross_region_requests = 0;

  std::vector<ShardStatsSnapshot> shards;

  [[nodiscard]] std::uint64_t completed() const noexcept {
    return accepted + rejected_infeasible + rejected_queue_full +
           shed_deadline + lost_conflict;
  }
  [[nodiscard]] double acceptance_ratio() const noexcept {
    const std::uint64_t n = completed();
    return n ? static_cast<double>(accepted) / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] std::uint64_t total_conflicts() const noexcept {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.conflicts;
    return n;
  }

  /// Single-line JSON object (no trailing newline) — the payload of the
  /// `JSON:` lines the shard bench prints.
  [[nodiscard]] std::string to_json() const;
};

class ShardMetrics {
 public:
  explicit ShardMetrics(std::size_t num_shards);

  void on_submitted();
  /// Terminal response sink (every outcome, incl. queue-full rejects).
  void on_response(const serve::Response& r);
  void on_release();
  void on_cross_region();
  void on_retry();
  /// A commit (or conflict) classified by ShardedLedger::try_commit.
  void on_commit(const CommitResult& result);
  void set_queue_depth(RegionId shard, std::size_t depth);

  [[nodiscard]] ShardMetricsSnapshot snapshot() const;

  [[nodiscard]] util::MetricRegistry& registry() noexcept {
    return *registry_;
  }
  [[nodiscard]] const util::MetricRegistry& registry() const noexcept {
    return *registry_;
  }

 private:
  struct PerShard {
    util::Counter commits;
    util::Counter conflicts;
    util::Gauge queue_depth;
  };

  /// unique_ptr so instrument handles stay valid if the owner moves.
  std::unique_ptr<util::MetricRegistry> registry_;

  util::Counter submitted_;
  util::Counter accepted_;
  util::Counter rejected_infeasible_;
  util::Counter rejected_queue_full_;
  util::Counter shed_deadline_;
  util::Counter lost_conflict_;
  util::Counter fast_commits_;
  util::Counter stamp_commits_;
  util::Counter validated_commits_;
  util::Counter retries_;
  util::Counter releases_;
  util::Counter cross_region_;
  std::vector<PerShard> per_shard_;
};

}  // namespace dagsfc::shard
