#pragma once
/// \file substrate.hpp
/// ShardedSubstrate — a priced Network seen through a RegionPartition.
///
/// The substrate derives, once, the shard layer's ownership map: every
/// resource (link or VNF instance) belongs to exactly one region, so each
/// shard's ledger can be the sole writer of its resources and a commit
/// only needs the locks of the regions its solution actually touches.
/// The ownership rule:
///   * an instance belongs to the region of its node;
///   * an intra-region link belongs to that region;
///   * a border link (endpoints in different regions) belongs to the
///     lower-numbered endpoint region — an arbitrary but fixed tie-break
///     that keeps the rule total and deterministic.
///
/// On top of the partition sits the contracted RegionGraph: one node per
/// region, an arc wherever at least one border link exists, and an arc
/// weight summarizing what crossing between the two regions costs:
///
///   w(A,B) = min border-link price(A,B) + ½·(transit(A) + transit(B))
///
/// where transit(R) is the mean intra-region link price of R — a proxy for
/// the cost of reaching the border from inside the region. Arc topology is
/// structural (fixed at construction); arc weights are price summaries and
/// go stale when the substrate is repriced. refresh_summaries() recomputes
/// them (through Graph::set_weight's write-through mirror — no CSR rebuild)
/// and bumps summary_epoch(), so callers can cheaply detect which pricing
/// generation a cached region path belongs to.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/edge_mask.hpp"
#include "graph/workspace.hpp"
#include "net/network.hpp"
#include "shard/partition.hpp"

namespace dagsfc::shard {

using net::EdgeId;
using net::InstanceId;
using net::NodeId;

/// How transit(R) — the "cost of crossing region R" term in the contracted
/// arc weights — is summarized at each refresh_summaries().
enum class SummaryMode {
  /// Mean intra-region link price (the original formula; the default, and
  /// what the existing contraction tests pin down).
  kMeanPrice,
  /// Mean shortest-path distance between R's border nodes, restricted to
  /// R's intra-region links — a real traversal cost instead of a per-link
  /// average, computed with one batched multi-source pass per region
  /// (multi_source_dijkstra_into). Falls back to kMeanPrice for a region
  /// with fewer than two border nodes or with border pairs that the
  /// intra-region links do not connect.
  kBorderDistance,
};

class ShardedSubstrate {
 public:
  /// Both referents must outlive the substrate. The partition must cover
  /// exactly the network's node set (validated).
  ShardedSubstrate(const net::Network& network, RegionPartition partition,
                   SummaryMode mode = SummaryMode::kMeanPrice);

  [[nodiscard]] const net::Network& network() const noexcept { return *net_; }
  [[nodiscard]] const RegionPartition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] std::size_t num_regions() const noexcept {
    return partition_.num_regions();
  }

  // --- ownership ----------------------------------------------------------

  [[nodiscard]] RegionId region_of_node(NodeId v) const {
    return partition_.region(v);
  }
  [[nodiscard]] RegionId owner_of_link(EdgeId e) const {
    DAGSFC_CHECK(e < link_owner_.size());
    return link_owner_[e];
  }
  [[nodiscard]] RegionId owner_of_instance(InstanceId id) const {
    DAGSFC_CHECK(id < instance_owner_.size());
    return instance_owner_[id];
  }
  [[nodiscard]] bool is_border_link(EdgeId e) const {
    DAGSFC_CHECK(e < border_link_.size());
    return border_link_[e];
  }

  /// All links / instances a region's shard is the sole writer of.
  [[nodiscard]] std::span<const EdgeId> links_owned_by(RegionId r) const {
    DAGSFC_CHECK(r < region_links_.size());
    return region_links_[r];
  }
  [[nodiscard]] std::span<const InstanceId> instances_owned_by(
      RegionId r) const {
    DAGSFC_CHECK(r < region_instances_.size());
    return region_instances_[r];
  }

  /// Every border link between regions \p a and \p b (either orientation);
  /// empty span when the regions are not adjacent.
  [[nodiscard]] std::span<const EdgeId> border_links(RegionId a,
                                                    RegionId b) const;

  // --- contracted region graph --------------------------------------------

  /// One node per region; arcs where border links exist; weights are the
  /// cost summaries described in the file comment, as of the last
  /// refresh_summaries() (construction counts as the first refresh).
  [[nodiscard]] const graph::Graph& region_graph() const noexcept {
    return region_graph_;
  }

  /// transit(R) of \p r as of the last refresh — mean intra link price
  /// under SummaryMode::kMeanPrice, mean border-to-border distance under
  /// kBorderDistance (with the documented fallbacks); 0 when the region has
  /// no intra links.
  [[nodiscard]] double transit_price(RegionId r) const {
    DAGSFC_CHECK(r < transit_price_.size());
    return transit_price_[r];
  }

  [[nodiscard]] SummaryMode summary_mode() const noexcept { return mode_; }

  /// Nodes of region \p r incident to at least one border link, ascending.
  [[nodiscard]] std::span<const NodeId> border_nodes(RegionId r) const {
    DAGSFC_CHECK(r < region_border_nodes_.size());
    return region_border_nodes_[r];
  }

  /// Recomputes every arc weight and transit price from the network's
  /// current prices and bumps summary_epoch(). Call after repricing the
  /// substrate; topology never changes.
  void refresh_summaries();

  /// Pricing generation of the summaries (1 after construction).
  [[nodiscard]] std::uint64_t summary_epoch() const noexcept {
    return summary_epoch_;
  }

  /// Stage one of hierarchical embedding: up to \p k cheapest loopless
  /// region sequences from the region of \p src to the region of \p dst on
  /// the contracted graph, in ascending summary-cost order (deterministic —
  /// Yen with its fixed tie-breaks). A same-region pair yields the single
  /// one-element sequence. Each sequence is a set of regions an embedding
  /// may use; order within it carries no constraint for stage two.
  [[nodiscard]] std::vector<std::vector<RegionId>> region_paths(
      NodeId src, NodeId dst, std::size_t k) const;

 private:
  const net::Network* net_;
  RegionPartition partition_;
  SummaryMode mode_;

  std::vector<RegionId> link_owner_;
  std::vector<RegionId> instance_owner_;
  std::vector<bool> border_link_;
  std::vector<std::vector<EdgeId>> region_links_;
  std::vector<std::vector<InstanceId>> region_instances_;

  /// Border links per region-graph arc, indexed by the arc's EdgeId in
  /// region_graph_.
  std::vector<std::vector<EdgeId>> arc_border_links_;

  graph::Graph region_graph_;
  std::vector<double> transit_price_;
  std::uint64_t summary_epoch_ = 0;

  // kBorderDistance machinery: per-region border node lists (structural,
  // built once) plus a reusable workspace/mask pair for the per-refresh
  // multi-source passes.
  std::vector<std::vector<NodeId>> region_border_nodes_;
  graph::SearchWorkspace summary_ws_;
  graph::EdgeMaskBuffer summary_mask_;
};

}  // namespace dagsfc::shard
