#pragma once
/// \file partition.hpp
/// Node→region partitions of a substrate — the shard layer's ground truth.
///
/// A RegionPartition assigns every node of a topology to exactly one region
/// (dense ids 0..k-1, every region non-empty). Partitions come from three
/// places:
///   * kLabels — the region-labeled generators (graph::make_regional_waxman
///     / make_regional_fat_tree) emit labels alongside the topology;
///   * kStripe — contiguous NodeId blocks of near-equal size (exactly the
///     pod blocks of a fat-tree, and a cheap deterministic default for any
///     substrate whose generator laid related nodes out contiguously);
///   * kBfs — geodesic regions grown by breadth-first search from
///     farthest-first seeds, for substrates with no exploitable id layout.
///
/// All schemes are deterministic: same graph, same region count → the same
/// partition, bit for bit. Determinism matters because the shard service's
/// closed-loop metrics are asserted bit-identical across worker counts, and
/// the partition decides every request's home shard.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace dagsfc::shard {

using RegionId = std::uint32_t;
inline constexpr RegionId kInvalidRegion = static_cast<RegionId>(-1);

struct RegionPartition {
  std::vector<RegionId> region_of;            ///< per NodeId
  std::vector<std::vector<graph::NodeId>> members;  ///< per region, id order

  [[nodiscard]] std::size_t num_regions() const noexcept {
    return members.size();
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return region_of.size();
  }
  [[nodiscard]] RegionId region(graph::NodeId v) const {
    DAGSFC_CHECK(v < region_of.size());
    return region_of[v];
  }

  /// Builds the members lists from per-node labels. Labels must be dense
  /// (every id in [0, max_label] occurs at least once).
  [[nodiscard]] static RegionPartition from_labels(
      std::span<const std::uint32_t> labels);

  /// Structural sanity against \p g: one label per node, dense region ids,
  /// no empty region. Contract-checked (throws util::ContractViolation).
  void validate(const graph::Graph& g) const;
};

enum class PartitionScheme : std::uint8_t { kLabels, kStripe, kBfs };

[[nodiscard]] constexpr const char* to_string(PartitionScheme s) noexcept {
  switch (s) {
    case PartitionScheme::kLabels: return "labels";
    case PartitionScheme::kStripe: return "stripe";
    case PartitionScheme::kBfs: return "bfs";
  }
  return "unknown";
}

/// Parses "labels" / "stripe" / "bfs"; throws std::invalid_argument
/// otherwise (CLI flag plumbing).
[[nodiscard]] PartitionScheme partition_scheme_from_string(
    const std::string& name);

/// Contiguous id blocks: region r gets nodes [r·⌈n/k⌉, …) with the last
/// region absorbing the remainder. Requires 1 ≤ k ≤ n.
[[nodiscard]] RegionPartition partition_stripe(const graph::Graph& g,
                                               std::size_t regions);

/// Geodesic partition: k seeds chosen farthest-first by hop distance
/// (seed 0 = node 0, each next seed maximizes its hop distance to all
/// chosen seeds, ties to the lowest id), then one multi-source BFS assigns
/// every node to the nearest seed (ties to the lowest region id).
/// Deterministic; regions are connected when the graph is.
[[nodiscard]] RegionPartition partition_bfs(const graph::Graph& g,
                                            std::size_t regions);

/// Dispatch on \p scheme; kLabels requires \p labels (from a regional
/// generator), the others ignore it.
[[nodiscard]] RegionPartition make_partition(
    const graph::Graph& g, std::size_t regions, PartitionScheme scheme,
    std::span<const std::uint32_t> labels = {});

}  // namespace dagsfc::shard
