#include "shard/partition.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace dagsfc::shard {

RegionPartition RegionPartition::from_labels(
    std::span<const std::uint32_t> labels) {
  DAGSFC_CHECK_MSG(!labels.empty(), "cannot partition an empty node set");
  RegionPartition p;
  p.region_of.assign(labels.begin(), labels.end());
  const RegionId max_label = *std::max_element(labels.begin(), labels.end());
  p.members.resize(static_cast<std::size_t>(max_label) + 1);
  for (graph::NodeId v = 0; v < labels.size(); ++v) {
    p.members[labels[v]].push_back(v);
  }
  for (const auto& m : p.members) {
    DAGSFC_CHECK_MSG(!m.empty(), "region labels are not dense");
  }
  return p;
}

void RegionPartition::validate(const graph::Graph& g) const {
  DAGSFC_CHECK_MSG(region_of.size() == g.num_nodes(),
                   "partition covers a different node count");
  DAGSFC_CHECK_MSG(!members.empty(), "partition has no regions");
  std::size_t covered = 0;
  for (RegionId r = 0; r < members.size(); ++r) {
    DAGSFC_CHECK_MSG(!members[r].empty(), "empty region");
    for (const graph::NodeId v : members[r]) {
      DAGSFC_CHECK(v < region_of.size());
      DAGSFC_CHECK_MSG(region_of[v] == r, "members/region_of disagree");
      ++covered;
    }
  }
  DAGSFC_CHECK_MSG(covered == region_of.size(),
                   "members lists do not cover every node exactly once");
}

PartitionScheme partition_scheme_from_string(const std::string& name) {
  if (name == "labels") return PartitionScheme::kLabels;
  if (name == "stripe") return PartitionScheme::kStripe;
  if (name == "bfs") return PartitionScheme::kBfs;
  throw std::invalid_argument("unknown partition scheme: " + name);
}

RegionPartition partition_stripe(const graph::Graph& g, std::size_t regions) {
  const std::size_t n = g.num_nodes();
  DAGSFC_CHECK_MSG(regions >= 1 && regions <= n,
                   "region count must be in [1, num_nodes]");
  const std::size_t block = (n + regions - 1) / regions;
  RegionPartition p;
  p.region_of.resize(n);
  p.members.resize(regions);
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto r = static_cast<RegionId>(
        std::min<std::size_t>(v / block, regions - 1));
    p.region_of[v] = r;
    p.members[r].push_back(v);
  }
  // A too-even split can leave trailing blocks empty (e.g. n=10, k=7 →
  // block=2 uses only 5 blocks); ceil-division guarantees that cannot
  // happen while regions ≤ n... except when clamping folds several block
  // indices into the last region and skips intermediates. Guard explicitly.
  for (const auto& m : p.members) {
    DAGSFC_CHECK_MSG(!m.empty(), "stripe partition produced an empty region");
  }
  return p;
}

namespace {

/// Hop distances from \p source over the unweighted graph.
std::vector<std::uint32_t> bfs_hops(const graph::Graph& g,
                                    graph::NodeId source) {
  constexpr auto kUnreached = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreached);
  std::deque<graph::NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  const auto csr = g.csr();
  while (!queue.empty()) {
    const graph::NodeId v = queue.front();
    queue.pop_front();
    for (const auto& inc : csr.row(v)) {
      if (dist[inc.neighbor] == kUnreached) {
        dist[inc.neighbor] = dist[v] + 1;
        queue.push_back(inc.neighbor);
      }
    }
  }
  return dist;
}

}  // namespace

RegionPartition partition_bfs(const graph::Graph& g, std::size_t regions) {
  const std::size_t n = g.num_nodes();
  DAGSFC_CHECK_MSG(regions >= 1 && regions <= n,
                   "region count must be in [1, num_nodes]");
  DAGSFC_CHECK_MSG(is_connected(g), "bfs partition requires a connected graph");

  // Farthest-first seed selection: seed 0 is node 0; every next seed
  // maximizes its hop distance to the nearest chosen seed (lowest id wins
  // ties). min_dist[v] tracks that nearest-seed distance incrementally.
  std::vector<graph::NodeId> seeds;
  seeds.reserve(regions);
  seeds.push_back(0);
  std::vector<std::uint32_t> min_dist = bfs_hops(g, 0);
  while (seeds.size() < regions) {
    graph::NodeId best = graph::kInvalidNode;
    std::uint32_t best_dist = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (min_dist[v] > best_dist ||
          (min_dist[v] == best_dist && best == graph::kInvalidNode)) {
        best = v;
        best_dist = min_dist[v];
      }
    }
    seeds.push_back(best);
    const std::vector<std::uint32_t> d = bfs_hops(g, best);
    for (graph::NodeId v = 0; v < n; ++v) {
      min_dist[v] = std::min(min_dist[v], d[v]);
    }
  }

  // Multi-source BFS: nodes adopt the region of whichever seed reaches them
  // first; within one BFS level the queue drains in seed order then id
  // order, so ties go deterministically to the lowest region id.
  RegionPartition p;
  p.region_of.assign(n, kInvalidRegion);
  p.members.resize(regions);
  std::deque<graph::NodeId> queue;
  for (RegionId r = 0; r < seeds.size(); ++r) {
    p.region_of[seeds[r]] = r;
    queue.push_back(seeds[r]);
  }
  const auto csr = g.csr();
  while (!queue.empty()) {
    const graph::NodeId v = queue.front();
    queue.pop_front();
    for (const auto& inc : csr.row(v)) {
      if (p.region_of[inc.neighbor] == kInvalidRegion) {
        p.region_of[inc.neighbor] = p.region_of[v];
        queue.push_back(inc.neighbor);
      }
    }
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    DAGSFC_CHECK_MSG(p.region_of[v] != kInvalidRegion,
                     "bfs partition left a node unassigned");
    p.members[p.region_of[v]].push_back(v);
  }
  return p;
}

RegionPartition make_partition(const graph::Graph& g, std::size_t regions,
                               PartitionScheme scheme,
                               std::span<const std::uint32_t> labels) {
  RegionPartition p;
  switch (scheme) {
    case PartitionScheme::kLabels:
      DAGSFC_CHECK_MSG(!labels.empty(),
                       "kLabels partition requires generator labels");
      p = RegionPartition::from_labels(labels);
      DAGSFC_CHECK_MSG(regions == 0 || p.num_regions() == regions,
                       "label region count disagrees with the request");
      break;
    case PartitionScheme::kStripe:
      p = partition_stripe(g, regions);
      break;
    case PartitionScheme::kBfs:
      p = partition_bfs(g, regions);
      break;
  }
  p.validate(g);
  return p;
}

}  // namespace dagsfc::shard
