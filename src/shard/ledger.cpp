#include "shard/ledger.hpp"

#include <algorithm>
#include <cmath>

namespace dagsfc::shard {

ShardedLedger::ShardedLedger(const ShardedSubstrate& substrate)
    : substrate_(&substrate) {
  shards_.reserve(substrate.num_regions());
  for (std::size_t r = 0; r < substrate.num_regions(); ++r) {
    shards_.push_back(std::make_unique<Shard>(substrate.network()));
    // Shard ledgers are mutated only under their mutex and never searched
    // against directly (solvers run on composed scratch views), so a path
    // cache here would only accumulate dead weight.
    shards_.back()->ledger.set_cache_enabled(false);
  }
}

std::uint64_t ShardedLedger::shard_epoch(RegionId r) const {
  DAGSFC_CHECK(r < shards_.size());
  std::lock_guard lock(shards_[r]->mu);
  return shards_[r]->ledger.epoch();
}

void ShardedLedger::snapshot_epochs(std::span<const RegionId> regions,
                                    std::vector<std::uint64_t>& out) const {
  out.clear();
  out.reserve(regions.size());
  for (const RegionId r : regions) out.push_back(shard_epoch(r));
}

void ShardedLedger::compose(std::span<const RegionId> regions,
                            net::CapacityLedger& out,
                            std::vector<std::uint64_t>& epochs) const {
  DAGSFC_CHECK_MSG(&out.network() == &substrate_->network(),
                   "scratch ledger views a different Network");
  DAGSFC_CHECK_MSG(std::is_sorted(regions.begin(), regions.end()) &&
                       std::adjacent_find(regions.begin(), regions.end()) ==
                           regions.end(),
                   "region set must be sorted and duplicate-free");
  epochs.clear();
  epochs.reserve(regions.size());
  std::size_t next = 0;  // cursor into the sorted involved set
  for (RegionId r = 0; r < shards_.size(); ++r) {
    const bool involved = next < regions.size() && regions[next] == r;
    if (involved) {
      ++next;
      const Shard& shard = *shards_[r];
      std::lock_guard lock(shard.mu);
      for (const EdgeId e : substrate_->links_owned_by(r)) {
        out.set_link_residual(e, shard.ledger.link_residual(e));
      }
      for (const InstanceId id : substrate_->instances_owned_by(r)) {
        out.set_instance_residual(id, shard.ledger.instance_residual(id));
      }
      epochs.push_back(shard.ledger.epoch());
    } else {
      // Off-path regions read as exhausted — no lock needed, the value is
      // constant and set_*_residual no-ops when already zero.
      for (const EdgeId e : substrate_->links_owned_by(r)) {
        out.set_link_residual(e, 0.0);
      }
      for (const InstanceId id : substrate_->instances_owned_by(r)) {
        out.set_instance_residual(id, 0.0);
      }
    }
  }
  DAGSFC_CHECK_MSG(next == regions.size(), "region id out of range");
}

ShardedLedger::SplitUsage ShardedLedger::split_usage(
    const core::ResourceUsage& usage) const {
  SplitUsage split;
  std::vector<std::size_t> slot_of(shards_.size(),
                                   static_cast<std::size_t>(-1));
  const auto slot_for = [&](RegionId r) -> core::ResourceUsage& {
    if (slot_of[r] == static_cast<std::size_t>(-1)) {
      slot_of[r] = split.regions.size();
      split.regions.push_back(r);
      auto& u = split.per_region.emplace_back();
      u.link_uses.resize(usage.link_uses.size(), 0);
      u.instance_uses.resize(usage.instance_uses.size(), 0);
    }
    return split.per_region[slot_of[r]];
  };
  for (EdgeId e = 0; e < usage.link_uses.size(); ++e) {
    if (usage.link_uses[e] == 0) continue;
    slot_for(substrate_->owner_of_link(e)).link_uses[e] = usage.link_uses[e];
  }
  for (InstanceId id = 0; id < usage.instance_uses.size(); ++id) {
    if (usage.instance_uses[id] == 0) continue;
    slot_for(substrate_->owner_of_instance(id)).instance_uses[id] =
        usage.instance_uses[id];
  }
  // Sort by region id so lock acquisition below follows the global
  // hierarchy; the parallel arrays are permuted together.
  std::vector<std::size_t> order(split.regions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return split.regions[a] < split.regions[b];
  });
  SplitUsage sorted;
  sorted.regions.reserve(order.size());
  sorted.per_region.reserve(order.size());
  for (const std::size_t i : order) {
    sorted.regions.push_back(split.regions[i]);
    sorted.per_region.push_back(std::move(split.per_region[i]));
  }
  return sorted;
}

CommitResult ShardedLedger::try_commit(const core::ResourceUsage& usage,
                                       double rate,
                                       std::span<const RegionId> regions,
                                       std::span<const std::uint64_t> epochs) {
  DAGSFC_CHECK(regions.size() == epochs.size());
  const SplitUsage split = split_usage(usage);
  CommitResult result;
  result.touched = split.regions;
  if (split.regions.empty()) {
    result.ok = true;
    result.path = CommitPath::kFast;
    return result;
  }

  // The footprint's owner regions must be a subset of the composed region
  // set — the restricted view makes anything else a solver bug. Pair each
  // footprint region with its snapshot epoch (both arrays sorted).
  std::vector<std::uint64_t> my_epochs(split.regions.size());
  for (std::size_t i = 0, j = 0; i < split.regions.size(); ++i) {
    while (j < regions.size() && regions[j] < split.regions[i]) ++j;
    DAGSFC_CHECK_MSG(j < regions.size() && regions[j] == split.regions[i],
                     "solution uses a resource outside its region path");
    my_epochs[i] = epochs[j];
  }

  // Lock every involved shard, ascending region id.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(split.regions.size());
  for (const RegionId r : split.regions) {
    locks.emplace_back(shards_[r]->mu);
  }

  // Classify per shard; the commit's path is the slowest shard's path.
  // Stamp and capacity checks use the full usage spans against each
  // shard's full-size ledger — exact, because resources owned elsewhere
  // carry stamp 0 and nominal residuals in this shard (see file comment).
  CommitPath path = CommitPath::kFast;
  for (std::size_t i = 0; i < split.regions.size(); ++i) {
    const net::CapacityLedger& ledger = shards_[split.regions[i]]->ledger;
    if (ledger.epoch() == my_epochs[i]) continue;
    if (ledger.footprint_unchanged_since(usage.link_uses, usage.instance_uses,
                                         my_epochs[i])) {
      path = std::max(path, CommitPath::kStamp);
      continue;
    }
    if (ledger.can_apply(split.per_region[i].link_uses,
                         split.per_region[i].instance_uses, rate)) {
      path = std::max(path, CommitPath::kValidated);
      continue;
    }
    result.conflict_region = split.regions[i];
    return result;
  }

  // All shards accept: apply each shard's slice. No shard can fail here —
  // fast/stamp shards still hold the residuals the feasible solve saw, and
  // validated shards just passed can_apply under this lock.
  for (std::size_t i = 0; i < split.regions.size(); ++i) {
    shards_[split.regions[i]]->ledger.apply(split.per_region[i].link_uses,
                                            split.per_region[i].instance_uses,
                                            rate);
  }
  result.ok = true;
  result.path = path;
  return result;
}

void ShardedLedger::release(const core::ResourceUsage& usage, double rate) {
  const SplitUsage split = split_usage(usage);
  for (std::size_t i = 0; i < split.regions.size(); ++i) {
    Shard& shard = *shards_[split.regions[i]];
    std::lock_guard lock(shard.mu);
    shard.ledger.unapply(split.per_region[i].link_uses,
                         split.per_region[i].instance_uses, rate);
  }
}

bool ShardedLedger::residuals_nominal() const {
  // Same tolerance as the flat driver's conservation check: consume/release
  // round-trips are float adds, not bitwise inverses.
  constexpr double kTol = 1e-6;
  const net::Network& net = substrate_->network();
  for (RegionId r = 0; r < shards_.size(); ++r) {
    std::lock_guard lock(shards_[r]->mu);
    const net::CapacityLedger& ledger = shards_[r]->ledger;
    for (const EdgeId e : substrate_->links_owned_by(r)) {
      if (std::abs(ledger.link_residual(e) - net.link_capacity(e)) > kTol) {
        return false;
      }
    }
    for (const InstanceId id : substrate_->instances_owned_by(r)) {
      if (std::abs(ledger.instance_residual(id) - net.instance(id).capacity) >
          kTol) {
        return false;
      }
    }
  }
  return true;
}

double ShardedLedger::link_residual(EdgeId e) const {
  const RegionId r = substrate_->owner_of_link(e);
  std::lock_guard lock(shards_[r]->mu);
  return shards_[r]->ledger.link_residual(e);
}

double ShardedLedger::instance_residual(InstanceId id) const {
  const RegionId r = substrate_->owner_of_instance(id);
  std::lock_guard lock(shards_[r]->mu);
  return shards_[r]->ledger.instance_residual(id);
}

}  // namespace dagsfc::shard
