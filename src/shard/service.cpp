#include "shard/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dagsfc::shard {

namespace {

double ms_between(serve::Clock::time_point a, serve::Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Same (seed, id, attempt) mixing as the flat service, so outcomes are a
/// pure function of the request identity, never of worker scheduling.
std::uint64_t solve_seed(std::uint64_t base, serve::RequestId id,
                         std::uint32_t attempt) {
  std::uint64_t state = base ^ (id * 0x9e3779b97f4a7c15ULL) ^
                        (std::uint64_t{attempt} << 32);
  return splitmix64(state);
}

/// Touched-shard set as a bitmask for the commit span's arg (regions past
/// 63 are simply not representable — the span is a breadcrumb, the full
/// list lives in the per-shard metrics).
std::uint64_t shard_mask(const std::vector<RegionId>& regions) {
  std::uint64_t mask = 0;
  for (RegionId r : regions) {
    if (r < 64) mask |= std::uint64_t{1} << r;
  }
  return mask;
}

serve::CommitClass commit_class(CommitPath p) {
  switch (p) {
    case CommitPath::kFast: return serve::CommitClass::kFast;
    case CommitPath::kStamp: return serve::CommitClass::kStamp;
    case CommitPath::kValidated: return serve::CommitClass::kValidated;
    case CommitPath::kConflict: return serve::CommitClass::kConflict;
  }
  return serve::CommitClass::kConflict;
}

}  // namespace

ShardedEmbeddingService::ShardedEmbeddingService(
    const ShardedSubstrate& substrate, Options options)
    : substrate_(&substrate),
      opts_(options),
      inner_(make_inner_embedder(options.hier.inner)),
      ledger_(substrate),
      metrics_(substrate.num_regions()) {
  opts_.admission.validate();
  DAGSFC_CHECK(opts_.workers_per_shard >= 1);
  DAGSFC_CHECK(opts_.hier.region_paths >= 1);
  if (opts_.tracing.enabled) {
    spans_ = std::make_unique<util::SpanRecorder>(
        substrate.num_regions() * opts_.workers_per_shard,
        opts_.tracing.ring_capacity);
    flight_ = std::make_unique<serve::FlightRecorder>(
        opts_.tracing.flight_capacity);
  }
  pools_.reserve(substrate.num_regions());
  for (std::size_t s = 0; s < substrate.num_regions(); ++s) {
    pools_.push_back(
        std::make_unique<ShardPool>(opts_.admission.queue_capacity));
  }
  // Pools exist before any worker starts, so worker_loop's pools_ indexing
  // never races the construction loop.
  for (std::size_t s = 0; s < pools_.size(); ++s) {
    pools_[s]->workers.reserve(opts_.workers_per_shard);
    for (std::size_t w = 0; w < opts_.workers_per_shard; ++w) {
      const std::size_t lane = s * opts_.workers_per_shard + w;
      pools_[s]->workers.emplace_back([this, s, lane] {
        worker_loop(static_cast<RegionId>(s), lane);
      });
    }
  }
}

ShardedEmbeddingService::~ShardedEmbeddingService() { shutdown(); }

std::future<serve::Response> ShardedEmbeddingService::submit(
    serve::Request req) {
  metrics_.on_submitted();
  const RegionId home = substrate_->region_of_node(req.flow.source);
  if (substrate_->region_of_node(req.flow.destination) != home) {
    metrics_.on_cross_region();
  }
  {
    std::lock_guard lock(drain_mu_);
    ++outstanding_;
  }
  Job job;
  job.req = std::move(req);
  job.submitted = serve::Clock::now();
  std::future<serve::Response> fut = job.promise.get_future();
  ShardPool& pool = *pools_[home];
  if (pool.queue.try_push(std::move(job))) {
    metrics_.set_queue_depth(home, pool.queue.size());
  } else {
    serve::Response resp;
    resp.id = job.req.id;
    resp.outcome = serve::Outcome::RejectedQueueFull;
    finish(std::move(job), std::move(resp));
  }
  return fut;
}

void ShardedEmbeddingService::finish(Job&& job, serve::Response&& resp) {
  metrics_.on_response(resp);
  job.promise.set_value(std::move(resp));
  {
    std::lock_guard lock(drain_mu_);
    DAGSFC_CHECK(outstanding_ > 0);
    --outstanding_;
  }
  drain_cv_.notify_all();
}

void ShardedEmbeddingService::worker_loop(RegionId shard, std::size_t lane) {
  WorkerState state;
  ShardPool& pool = *pools_[shard];
  while (auto job = pool.queue.pop()) {
    metrics_.set_queue_depth(shard, pool.queue.size());
    // This worker is the lane's single writer for the request's lifetime.
    serve::RequestTrace trace(spans_.get(), lane, job->req.id);
    const std::uint64_t t_submit = trace.at(job->submitted);
    serve::Response resp = process(*job, state, trace);
    trace.outcome(resp.outcome, t_submit, trace.now(), resp.cost);
    maybe_promote(trace, resp);
    finish(std::move(*job), std::move(resp));
  }
}

void ShardedEmbeddingService::maybe_promote(const serve::RequestTrace& trace,
                                            const serve::Response& resp) {
  if (!flight_ || !trace.active()) return;
  const double latency_ms = resp.queue_ms + resp.solve_ms;
  const std::uint8_t hit = serve::evaluate_triggers(
      opts_.tracing, resp.outcome, latency_ms, /*watchdog_fired=*/false);
  if (hit == 0) return;
  serve::FlightTrace ft;
  ft.trace_id = resp.id;
  ft.triggers = hit;
  ft.outcome = resp.outcome;
  ft.latency_ms = latency_ms;
  ft.dropped_spans = trace.overflow();
  const std::span<const util::SpanRecord> spans = trace.spans();
  ft.spans.assign(spans.begin(), spans.end());
  for (util::SpanRecord& s : ft.spans) {
    s.lane = static_cast<std::uint32_t>(trace.lane());
  }
  flight_->promote(std::move(ft));
}

serve::Response ShardedEmbeddingService::process(Job& job, WorkerState& state,
                                                 serve::RequestTrace& trace) {
  const serve::Clock::time_point dequeued = serve::Clock::now();
  serve::Response resp;
  resp.id = job.req.id;
  resp.queue_ms = ms_between(job.submitted, dequeued);
  trace.queue_wait(trace.at(job.submitted), trace.at(dequeued));

  if (opts_.admission.should_shed(job.req, dequeued)) {
    resp.outcome = serve::Outcome::SheddedDeadline;
    resp.solve_ms = ms_between(dequeued, serve::Clock::now());
    return resp;
  }

  core::EmbeddingProblem problem;
  problem.network = &substrate_->network();
  problem.sfc = &job.req.sfc;
  problem.flow = job.req.flow;
  const core::ModelIndex index(problem);
  const core::Evaluator evaluator(index);
  const double rate = job.req.flow.rate;

  // Stage one: deterministic candidate region sets, cheapest summary
  // first. Computed once per request — the region graph is structural and
  // its summaries only change on explicit repricing.
  const auto paths = substrate_->region_paths(
      job.req.flow.source, job.req.flow.destination, opts_.hier.region_paths);
  std::vector<std::vector<RegionId>> candidates;
  candidates.reserve(paths.size());
  for (const auto& p : paths) {
    std::vector<RegionId> regions(p.begin(), p.end());
    std::sort(regions.begin(), regions.end());
    regions.erase(std::unique(regions.begin(), regions.end()), regions.end());
    candidates.push_back(std::move(regions));
  }
  if (candidates.empty()) {
    resp.outcome = serve::Outcome::RejectedInfeasible;
    resp.solve_ms = ms_between(dequeued, serve::Clock::now());
    return resp;
  }

  if (!state.scratch) {
    state.scratch =
        std::make_unique<net::CapacityLedger>(substrate_->network());
  }

  const std::uint32_t max_attempts = 1 + opts_.admission.max_retries;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      metrics_.on_retry();
      const auto backoff = opts_.admission.backoff_before(attempt);
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    }
    Rng rng(solve_seed(opts_.seed, job.req.id, attempt));

    // Stage two, first-feasible: snapshot the candidate's shards, solve in
    // the restricted view (lock-free), then commit against the live shards.
    bool solved_any = false;
    const std::uint16_t att = static_cast<std::uint16_t>(attempt);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const auto& regions = candidates[c];
      const std::uint64_t t_solve0 = trace.now();
      ledger_.compose(regions, *state.scratch, state.epochs);
      const core::SolveResult r =
          inner_->solve(index, *state.scratch, rng, nullptr, &state.ws);
      ++resp.solves;
      trace.solve(att, r.ok(), t_solve0, trace.now(), c,
                  r.ok() ? r.cost : 0.0);
      if (!r.ok()) continue;
      solved_any = true;

      core::ResourceUsage usage = evaluator.usage(*r.solution);
      const std::uint64_t t_commit0 = trace.now();
      CommitResult commit =
          ledger_.try_commit(usage, rate, regions, state.epochs);
      trace.commit(att, commit_class(commit.path), t_commit0, trace.now(),
                   shard_mask(commit.touched));
      metrics_.on_commit(commit);
      if (!commit.ok) {
        ++resp.conflicts;
        break;  // fresh snapshots next attempt
      }
      {
        std::lock_guard lock(flows_mu_);
        flows_.emplace(job.req.id, CommittedFlow{std::move(usage), rate});
      }
      resp.outcome = serve::Outcome::Accepted;
      resp.cost = r.cost;
      resp.epoch_validated = commit.path != CommitPath::kFast;
      resp.stamp_validated = commit.path == CommitPath::kStamp;
      resp.solve_ms = ms_between(dequeued, serve::Clock::now());
      return resp;
    }

    if (!solved_any) {
      // Every candidate infeasible against consistent snapshots: a genuine
      // reject — retrying against an even fuller ledger cannot help.
      resp.outcome = serve::Outcome::RejectedInfeasible;
      resp.solve_ms = ms_between(dequeued, serve::Clock::now());
      return resp;
    }
  }

  resp.outcome = serve::Outcome::LostConflict;
  resp.solve_ms = ms_between(dequeued, serve::Clock::now());
  return resp;
}

bool ShardedEmbeddingService::release(serve::RequestId id) {
  CommittedFlow flow;
  {
    std::lock_guard lock(flows_mu_);
    auto it = flows_.find(id);
    if (it == flows_.end()) return false;
    flow = std::move(it->second);
    flows_.erase(it);
  }
  ledger_.release(flow.usage, flow.rate);
  metrics_.on_release();
  return true;
}

std::size_t ShardedEmbeddingService::in_service() const {
  std::lock_guard lock(flows_mu_);
  return flows_.size();
}

void ShardedEmbeddingService::drain() {
  std::unique_lock lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void ShardedEmbeddingService::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (auto& pool : pools_) pool->queue.close();
  for (auto& pool : pools_) {
    for (std::thread& t : pool->workers) {
      if (t.joinable()) t.join();
    }
  }
}

}  // namespace dagsfc::shard
