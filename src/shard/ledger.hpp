#pragma once
/// \file ledger.hpp
/// ShardedLedger — residual capacity split into per-region shards.
///
/// Each region owns one full-size net::CapacityLedger guarded by its own
/// mutex, but only the resources the region owns (ShardedSubstrate's
/// ownership map) are ever mutated in it; everything else stays at nominal
/// forever. That makes each shard the single-writer authority for its
/// resources, and lets a cross-region commit take only the locks of the
/// regions on its path — requests whose region sets are disjoint never
/// contend.
///
/// ## View composition
///
/// A solver cannot read k ledgers at once, so compose() assembles a
/// *restricted snapshot* into a caller-owned scratch ledger: for every
/// involved region, the owner shard's live residuals are copied in (under
/// that shard's lock, taken in ascending region order); every resource
/// owned by a region outside the set is forced to residual 0. A solver run
/// against the composed view is thereby confined to the allowed regions —
/// zero-residual resources fail every capacity predicate — without any id
/// remapping: solutions come out in global ids and validate unchanged.
/// Writes go through CapacityLedger::set_*_residual, which no-ops on
/// bitwise-equal values, so a reused scratch ledger keeps its warm path
/// cache across requests that see unchanged regions.
///
/// ## Commit protocol
///
/// try_commit() revalidates a solution's footprint against the live shards
/// under their locks (ascending order — the global lock hierarchy, so
/// concurrent cross-region commits cannot deadlock) and applies it
/// atomically across all of them. Classification mirrors the serve layer's
/// MVCC pipeline, per shard:
///   * fast      — no shard's epoch moved since the snapshot: apply as-is;
///   * stamp     — epochs moved but no resource in the footprint was
///                 touched (per-resource stamps): the residuals the solver
///                 saw are still live, apply without re-checking;
///   * validated — the footprint was touched, but can_apply() still holds
///                 on every shard: apply (the solution's *cost* reflects
///                 the snapshot, its feasibility is re-proven);
///   * conflict  — some shard rejects: nothing is applied anywhere.
///
/// The full-span trick: stamp- and can_apply-checks run with the complete
/// usage vectors against each shard's full-size ledger. That is exact, not
/// approximate — resources owned by other shards have stamp 0 (never
/// mutated here) and nominal residuals, so they can neither fail the stamp
/// check nor the capacity check spuriously; only apply/unapply must be
/// split per shard, which split_usage() does once per solution.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/solution.hpp"
#include "net/ledger.hpp"
#include "shard/substrate.hpp"

namespace dagsfc::shard {

enum class CommitPath : std::uint8_t { kFast, kStamp, kValidated, kConflict };

[[nodiscard]] constexpr const char* to_string(CommitPath p) noexcept {
  switch (p) {
    case CommitPath::kFast: return "fast";
    case CommitPath::kStamp: return "stamp";
    case CommitPath::kValidated: return "validated";
    case CommitPath::kConflict: return "conflict";
  }
  return "unknown";
}

struct CommitResult {
  bool ok = false;
  CommitPath path = CommitPath::kConflict;
  /// Regions owning part of the footprint (= the shards this commit wrote,
  /// or would have written), ascending. The service's per-shard counters.
  std::vector<RegionId> touched;
  /// On conflict: the region whose shard rejected the footprint.
  RegionId conflict_region = kInvalidRegion;
};

class ShardedLedger {
 public:
  /// One shard per region of \p substrate, all starting at nominal
  /// capacity. The substrate must outlive the ledger.
  explicit ShardedLedger(const ShardedSubstrate& substrate);

  [[nodiscard]] const ShardedSubstrate& substrate() const noexcept {
    return *substrate_;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }

  /// Live epoch of one shard's ledger (locks it briefly).
  [[nodiscard]] std::uint64_t shard_epoch(RegionId r) const;

  /// Epochs of the involved shards in the order of \p regions — the
  /// snapshot handle compose() fills and try_commit() validates against.
  void snapshot_epochs(std::span<const RegionId> regions,
                       std::vector<std::uint64_t>& out) const;

  /// Assembles the restricted snapshot of \p regions into \p out (see file
  /// comment) and records each involved shard's epoch into \p epochs,
  /// parallel to \p regions. \p out must view the substrate's Network.
  /// \p regions must be sorted ascending and duplicate-free.
  void compose(std::span<const RegionId> regions, net::CapacityLedger& out,
               std::vector<std::uint64_t>& epochs) const;

  /// Commits \p usage (rate-scaled) across the shards of \p regions,
  /// revalidating against \p epochs from compose(). All-or-nothing: on
  /// conflict no shard is modified. \p regions sorted ascending.
  CommitResult try_commit(const core::ResourceUsage& usage, double rate,
                          std::span<const RegionId> regions,
                          std::span<const std::uint64_t> epochs);

  /// Releases a previously committed footprint (flow departure). The
  /// owning shards are derived from the usage itself.
  void release(const core::ResourceUsage& usage, double rate);

  /// True iff every shard's owned resources are back at nominal capacity —
  /// the conservation oracle for commit/release batteries. Locks shards
  /// one at a time, so call only at quiescence.
  [[nodiscard]] bool residuals_nominal() const;

  /// Direct locked read of one resource's live residual (diagnostics).
  [[nodiscard]] double link_residual(EdgeId e) const;
  [[nodiscard]] double instance_residual(InstanceId id) const;

 private:
  /// Per-solution split of the usage vectors by owner region: the regions
  /// that own at least one counted resource, each with its slice of uses
  /// (still full-length vectors, zero outside the region — apply() skips
  /// zeros, so sparsity costs nothing extra).
  struct SplitUsage {
    std::vector<RegionId> regions;
    std::vector<core::ResourceUsage> per_region;
  };
  [[nodiscard]] SplitUsage split_usage(const core::ResourceUsage& usage) const;

  struct Shard {
    explicit Shard(const net::Network& n) : ledger(n) {}
    mutable std::mutex mu;
    net::CapacityLedger ledger;
  };

  const ShardedSubstrate* substrate_;
  // unique_ptr because Shard holds a mutex (not movable, so not
  // vector-element material) and because it pins each shard's cache line
  // group to its own allocation — no false sharing between shard mutexes.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dagsfc::shard
