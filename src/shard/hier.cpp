#include "shard/hier.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/backtracking.hpp"
#include "core/layered.hpp"

namespace dagsfc::shard {

InnerAlgorithm inner_algorithm_from_string(const std::string& name) {
  if (name == "bbe") return InnerAlgorithm::kBbe;
  if (name == "mbbe") return InnerAlgorithm::kMbbe;
  if (name == "layered") return InnerAlgorithm::kLayered;
  throw std::invalid_argument("unknown inner algorithm: " + name);
}

std::unique_ptr<core::Embedder> make_inner_embedder(InnerAlgorithm algorithm) {
  switch (algorithm) {
    case InnerAlgorithm::kBbe:
      return std::make_unique<core::BbeEmbedder>();
    case InnerAlgorithm::kMbbe:
      return std::make_unique<core::MbbeEmbedder>();
    case InnerAlgorithm::kLayered:
      return std::make_unique<core::LayeredEmbedder>();
  }
  DAGSFC_CHECK_MSG(false, "unreachable inner algorithm");
  return nullptr;
}

void restrict_to_regions(const ShardedSubstrate& substrate,
                         std::span<const RegionId> regions,
                         net::CapacityLedger& ledger) {
  DAGSFC_CHECK(std::is_sorted(regions.begin(), regions.end()));
  std::size_t next = 0;
  for (RegionId r = 0; r < substrate.num_regions(); ++r) {
    if (next < regions.size() && regions[next] == r) {
      ++next;
      continue;  // allowed region keeps its residuals
    }
    for (const EdgeId e : substrate.links_owned_by(r)) {
      ledger.set_link_residual(e, 0.0);
    }
    for (const InstanceId id : substrate.instances_owned_by(r)) {
      ledger.set_instance_residual(id, 0.0);
    }
  }
  DAGSFC_CHECK_MSG(next == regions.size(), "region id out of range");
}

HierarchicalEmbedder::HierarchicalEmbedder(const ShardedSubstrate& substrate,
                                           const HierOptions& opts)
    : substrate_(&substrate),
      opts_(opts),
      inner_(make_inner_embedder(opts.inner)) {
  DAGSFC_CHECK_MSG(opts.region_paths >= 1, "need at least one stage-one path");
}

core::SolveResult HierarchicalEmbedder::do_solve(
    const core::ModelIndex& index, const net::CapacityLedger& ledger, Rng& rng,
    core::TraceSink* trace, graph::SearchWorkspace* workspace) const {
  (void)trace;  // inner solves run untraced; the envelope traces HIER itself
  DAGSFC_CHECK_MSG(&ledger.network() == &substrate_->network(),
                   "ledger views a different Network than the substrate");
  const core::Flow& flow = index.problem().flow;

  // Stage one: candidate region sets, cheapest summary first.
  const auto candidates = substrate_->region_paths(
      flow.source, flow.destination, opts_.region_paths);

  core::SolveResult best;
  best.failure_reason = candidates.empty()
                            ? "regions of source and destination disconnected "
                              "in the region graph"
                            : "no candidate region set admits the SFC";
  // Stage two: solve inside each candidate's restricted view; keep the
  // cheapest admission. Effort counters aggregate across every inner
  // attempt — HIER's reported work is the work it actually did.
  for (const auto& path : candidates) {
    std::vector<RegionId> regions(path.begin(), path.end());
    std::sort(regions.begin(), regions.end());
    regions.erase(std::unique(regions.begin(), regions.end()), regions.end());

    net::CapacityLedger restricted(ledger);
    restrict_to_regions(*substrate_, regions, restricted);
    core::SolveResult attempt =
        inner_->solve(index, restricted, rng, nullptr, workspace);
    best.expanded_sub_solutions += attempt.expanded_sub_solutions;
    best.candidate_solutions += attempt.candidate_solutions;
    best.path_queries += attempt.path_queries;
    if (!attempt.ok()) continue;
    if (!best.ok() || attempt.cost < best.cost) {
      best.solution = std::move(attempt.solution);
      best.cost = attempt.cost;
      best.failure_reason.clear();
    }
  }

  if (!best.ok() && opts_.flat_fallback) {
    core::SolveResult flat = inner_->solve(index, ledger, rng, nullptr,
                                           workspace);
    flat.expanded_sub_solutions += best.expanded_sub_solutions;
    flat.candidate_solutions += best.candidate_solutions;
    flat.path_queries += best.path_queries;
    return flat;
  }
  return best;
}

}  // namespace dagsfc::shard
