#pragma once
/// \file hier.hpp
/// HierarchicalEmbedder ("HIER") — two-stage embedding over a sharded
/// substrate.
///
/// Stage one plans coarsely: the k cheapest region sequences between the
/// flow's source and destination regions on the contracted region graph
/// (ShardedSubstrate::region_paths), using the price summaries instead of
/// the full topology. Stage two solves exactly, but small: for each
/// candidate region set, the substrate ledger is *restricted* — every
/// resource owned by a region outside the set has its residual forced to
/// zero — and a flat inner embedder (BBE, MBBE, or LAYERED) runs on the
/// restricted view. Zero-residual resources fail every capacity predicate,
/// so the inner solver is confined to the candidate's regions without any
/// id remapping; its solution is in global ids and passes
/// core::SolutionValidator unchanged. The embedder returns the cheapest
/// solution across candidates (best-of-k); candidates are tried in
/// ascending summary-cost order, so ties keep the coarsely-cheapest plan.
///
/// Restriction trades optimality for locality: HIER's cost is ≥ the flat
/// inner algorithm's cost on the full substrate (a restricted search space
/// cannot beat the unrestricted optimum) — the payoff is that each solve
/// touches only the shards on its region path, which is what makes the
/// sharded serving layer scale. flat_fallback recovers admissions the
/// restriction would lose: when every candidate fails, retry once
/// unrestricted.

#include <memory>
#include <span>

#include "core/embedder.hpp"
#include "shard/substrate.hpp"

namespace dagsfc::shard {

enum class InnerAlgorithm : std::uint8_t { kBbe, kMbbe, kLayered };

[[nodiscard]] constexpr const char* to_string(InnerAlgorithm a) noexcept {
  switch (a) {
    case InnerAlgorithm::kBbe: return "bbe";
    case InnerAlgorithm::kMbbe: return "mbbe";
    case InnerAlgorithm::kLayered: return "layered";
  }
  return "unknown";
}

/// Parses "bbe" / "mbbe" / "layered"; throws std::invalid_argument
/// otherwise (CLI flag plumbing).
[[nodiscard]] InnerAlgorithm inner_algorithm_from_string(
    const std::string& name);

/// Constructs a fresh flat solver for stage two (default options).
[[nodiscard]] std::unique_ptr<core::Embedder> make_inner_embedder(
    InnerAlgorithm algorithm);

struct HierOptions {
  std::size_t region_paths = 4;  ///< stage-one candidates (k of k-shortest)
  InnerAlgorithm inner = InnerAlgorithm::kMbbe;
  /// Retry once on the unrestricted substrate when every candidate fails.
  /// Off by default: the serving layer wants the restricted failure (a
  /// flat retry would need every shard's lock).
  bool flat_fallback = false;
};

/// Zeroes, in place, the residual of every resource owned by a region
/// outside \p regions (sorted ascending). The shard layer's restriction
/// primitive, shared by this embedder (on ledger copies) and by
/// ShardedLedger::compose (on scratch views).
void restrict_to_regions(const ShardedSubstrate& substrate,
                         std::span<const RegionId> regions,
                         net::CapacityLedger& ledger);

class HierarchicalEmbedder final : public core::Embedder {
 public:
  /// \p substrate must outlive the embedder and must shard the same
  /// Network every solve's problem and ledger reference.
  explicit HierarchicalEmbedder(const ShardedSubstrate& substrate,
                                const HierOptions& opts = {});

  [[nodiscard]] std::string name() const override { return "HIER"; }

  [[nodiscard]] const ShardedSubstrate& substrate() const noexcept {
    return *substrate_;
  }
  [[nodiscard]] const core::Embedder& inner() const noexcept {
    return *inner_;
  }
  [[nodiscard]] const HierOptions& options() const noexcept { return opts_; }

 protected:
  [[nodiscard]] core::SolveResult do_solve(
      const core::ModelIndex& index, const net::CapacityLedger& ledger,
      Rng& rng, core::TraceSink* trace,
      graph::SearchWorkspace* workspace) const override;

 private:
  const ShardedSubstrate* substrate_;
  HierOptions opts_;
  std::unique_ptr<core::Embedder> inner_;
};

}  // namespace dagsfc::shard
