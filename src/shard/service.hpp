#pragma once
/// \file service.hpp
/// ShardedEmbeddingService — the online embedding service over a sharded
/// substrate, one worker pool per shard.
///
/// Requests are routed to the *home shard* of their flow's source node and
/// queue on that shard's own bounded queue. A worker serving the home
/// shard runs the hierarchical pipeline per request:
///
///   1. Stage one: candidate region sequences between the source and
///      destination regions on the contracted region graph (cheapest
///      summary first).
///   2. Per candidate: compose a restricted snapshot of exactly the
///      candidate's shards into the worker's scratch ledger
///      (ShardedLedger::compose — off-path regions read as exhausted), and
///      run the flat inner embedder on it. The solve touches no locks.
///   3. First feasible solve wins: commit it via ShardedLedger::try_commit,
///      which locks only the shards owning the footprint (ascending region
///      order) and revalidates per shard — fast / stamp / validated, the
///      MVCC classification of the flat serve plane, per shard. A conflict
///      sends the request back to step 2 with fresh snapshots, up to
///      AdmissionPolicy::max_retries times.
///
/// Requests whose region paths are disjoint commit on disjoint shard sets
/// and never serialize against each other — that is the scaling story the
/// shard_scaling bench measures. The service is *first-feasible* across
/// candidates (latency over optimality); the standalone
/// HierarchicalEmbedder is best-of-k (cost over latency) — the two share
/// stage one and the restriction machinery but deliberately not the
/// selection rule.
///
/// Determinism: solver RNG streams are a pure function of (service seed,
/// request id, attempt) and candidate order is deterministic, so under the
/// closed-loop driver (one request in flight) every counter — per-shard
/// commits included — is bit-identical across workers_per_shard.

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/embedder.hpp"
#include "serve/admission.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/trace.hpp"
#include "shard/hier.hpp"
#include "shard/ledger.hpp"
#include "shard/metrics.hpp"
#include "util/span_recorder.hpp"

namespace dagsfc::shard {

class ShardedEmbeddingService {
 public:
  struct Options {
    std::size_t workers_per_shard = 1;
    serve::AdmissionPolicy admission;  ///< queue_capacity is per shard
    HierOptions hier;                  ///< region_paths + inner algorithm
    /// Base seed of the per-request solver RNG streams (same mixing rule
    /// as the flat service: (seed, id, attempt), worker-independent).
    std::uint64_t seed = 0x5eedbeefULL;
    /// Request-lifecycle tracing (serve/trace.hpp), shared with the flat
    /// plane: one ring lane per (shard, worker), commit spans carrying the
    /// touched-shard set as a bitmask, triggered traces promoted to the
    /// flight recorder. Observation only — outcomes are unchanged.
    serve::TracingOptions tracing;
  };

  /// The substrate must outlive the service.
  ShardedEmbeddingService(const ShardedSubstrate& substrate, Options options);
  ~ShardedEmbeddingService();

  ShardedEmbeddingService(const ShardedEmbeddingService&) = delete;
  ShardedEmbeddingService& operator=(const ShardedEmbeddingService&) = delete;

  /// Routes the request to its home shard's pool. Always returns a valid
  /// future; queue-full rejections resolve it immediately.
  [[nodiscard]] std::future<serve::Response> submit(serve::Request req);

  /// Departure: credits the flow's usage back to its owning shards.
  bool release(serve::RequestId id);

  [[nodiscard]] std::size_t in_service() const;

  /// Blocks until every submitted request has a response.
  void drain();

  /// Closes every queue and joins all pools; queued requests are still
  /// served. Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] ShardMetricsSnapshot metrics() const {
    return metrics_.snapshot();
  }
  /// The registry behind /metrics — per-service, like the flat plane.
  [[nodiscard]] const util::MetricRegistry& metrics_registry() const noexcept {
    return metrics_.registry();
  }
  /// Mutable access, so callers can register extra instruments (e.g.
  /// util::ProcessMetrics) on the same registry the endpoint scrapes.
  [[nodiscard]] util::MetricRegistry& metrics_registry() noexcept {
    return metrics_.registry();
  }

  [[nodiscard]] const ShardedSubstrate& substrate() const noexcept {
    return *substrate_;
  }
  [[nodiscard]] const ShardedLedger& ledger() const noexcept {
    return ledger_;
  }
  [[nodiscard]] const Options& options() const noexcept { return opts_; }

  /// Tail-sampled trace store; null unless Options::tracing.enabled.
  [[nodiscard]] const serve::FlightRecorder* flight_recorder() const noexcept {
    return flight_.get();
  }
  /// The always-on span ring; null unless Options::tracing.enabled.
  [[nodiscard]] const util::SpanRecorder* span_recorder() const noexcept {
    return spans_.get();
  }

 private:
  struct Job {
    serve::Request req;
    std::promise<serve::Response> promise;
    serve::Clock::time_point submitted{};
  };

  struct CommittedFlow {
    core::ResourceUsage usage;
    double rate = 0.0;
  };

  /// Long-lived per-worker solver state: warm search buffers plus the
  /// scratch ledger compose() overwrites per candidate (its path cache
  /// survives across requests — unchanged regions rewrite bitwise-equal
  /// residuals, which set_*_residual turns into no-ops).
  struct WorkerState {
    graph::SearchWorkspace ws;
    std::unique_ptr<net::CapacityLedger> scratch;
    std::vector<std::uint64_t> epochs;
  };

  struct ShardPool {
    explicit ShardPool(std::size_t queue_capacity) : queue(queue_capacity) {}
    serve::BoundedQueue<Job> queue;
    std::vector<std::thread> workers;
  };

  /// \p lane is the worker's global SpanRecorder lane:
  /// shard * workers_per_shard + worker.
  void worker_loop(RegionId shard, std::size_t lane);
  [[nodiscard]] serve::Response process(Job& job, WorkerState& state,
                                        serve::RequestTrace& trace);
  void finish(Job&& job, serve::Response&& resp);
  /// Tail sampling: promotes \p trace iff \p resp matches a trigger.
  void maybe_promote(const serve::RequestTrace& trace,
                     const serve::Response& resp);

  const ShardedSubstrate* substrate_;
  Options opts_;
  std::unique_ptr<core::Embedder> inner_;
  ShardedLedger ledger_;
  ShardMetrics metrics_;

  /// Tracing plane (null when Options::tracing.enabled is false): one ring
  /// lane per (shard, worker), one shared flight recorder.
  std::unique_ptr<util::SpanRecorder> spans_;
  std::unique_ptr<serve::FlightRecorder> flight_;

  mutable std::mutex flows_mu_;
  std::unordered_map<serve::RequestId, CommittedFlow> flows_;

  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t outstanding_ = 0;

  std::vector<std::unique_ptr<ShardPool>> pools_;
  bool shut_down_ = false;
};

}  // namespace dagsfc::shard
