#pragma once
/// \file driver.hpp
/// Deterministic drivers for the sharded embedding service — the shard
/// plane's mirror of serve/driver.hpp.
///
/// Workloads are materialized up front on a regional scenario
/// (sim::make_regional_scenario): the same Poisson arrivals / random
/// DAG-SFC / exponential holding recipe as serve::make_workload, with
/// endpoints uniform over the whole regional substrate — so a workload is
/// a pure function of (config, seed), and the fraction of cross-region
/// requests follows from the region geometry, not from the driver.
///
/// run_sharded_closed_loop keeps one request in flight globally, making
/// every metric — the per-shard commit counters included — a pure function
/// of the workload, bit-identical across workers_per_shard.
/// run_sharded_open_loop is the contention mode: producer threads race
/// cross-shard commits against each other, which is what the shard_scaling
/// bench measures.

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "serve/driver.hpp"
#include "shard/service.hpp"
#include "sim/dynamic.hpp"
#include "sim/regional.hpp"

namespace dagsfc::shard {

/// A reproducible sharded workload: the regional scenario (network +
/// labels) plus the arrival schedule. The scenario must outlive any
/// substrate/service built over it.
struct ShardWorkload {
  sim::RegionalScenario scenario;
  std::vector<serve::TimedRequest> arrivals;
};

struct ShardWorkloadConfig {
  sim::RegionalConfig regional;     ///< substrate shape + pricing
  double arrival_rate = 1.0;        ///< Poisson arrivals per time unit
  double mean_holding_time = 10.0;  ///< exponential holding mean
  std::size_t num_arrivals = 200;

  void validate() const;
};

/// Materializes the schedule. Deterministic in \p seed.
[[nodiscard]] ShardWorkload make_shard_workload(const ShardWorkloadConfig& cfg,
                                                std::uint64_t seed);

/// Hooks to reach the live service (e.g. to attach a /metrics endpoint to
/// its registry for the duration of the run).
struct ShardServiceTuning {
  /// Called once, after the service starts and before any submit.
  std::function<void(ShardedEmbeddingService&)> on_start;
  /// Called once, after the drain and final metrics capture but before the
  /// service (and its registry) is destroyed.
  std::function<void(ShardedEmbeddingService&)> on_finish;
};

struct ShardDriverResult {
  ShardMetricsSnapshot metrics;
  double simulated_time = 0.0;
  /// Residuals returned to nominal after every accepted flow departed.
  bool conserved = false;
};

/// Replays \p workload closed-loop (one request in flight) through a fresh
/// ShardedEmbeddingService over \p substrate. Deterministic in the
/// workload and service seed for any workers_per_shard.
[[nodiscard]] ShardDriverResult run_sharded_closed_loop(
    const ShardWorkload& workload, const ShardedSubstrate& substrate,
    const ShardedEmbeddingService::Options& options,
    const ShardServiceTuning& tuning = {});

/// Open-loop replay: producer threads with windows of outstanding
/// requests, racing cross-shard commits.
struct ShardOpenLoopConfig {
  std::size_t producers = 2;
  std::size_t window = 8;
  /// Target flows concurrently in service (per-producer share, as in the
  /// flat open loop).
  std::size_t target_load = 16;
  ShardedEmbeddingService::Options service;
  /// Per-request deadline measured from submit; zero disables.
  std::chrono::nanoseconds deadline{0};
  ShardServiceTuning tuning;
};

struct ShardOpenLoopResult {
  ShardMetricsSnapshot metrics;
  double wall_seconds = 0.0;
  bool conserved = false;

  [[nodiscard]] double throughput_rps() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(metrics.completed()) / wall_seconds
               : 0.0;
  }
};

[[nodiscard]] ShardOpenLoopResult run_sharded_open_loop(
    const ShardWorkload& workload, const ShardedSubstrate& substrate,
    const ShardOpenLoopConfig& cfg);

}  // namespace dagsfc::shard
