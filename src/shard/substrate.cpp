#include "shard/substrate.hpp"

#include <algorithm>
#include <limits>

#include "graph/dijkstra.hpp"
#include "graph/yen.hpp"

namespace dagsfc::shard {

ShardedSubstrate::ShardedSubstrate(const net::Network& network,
                                   RegionPartition partition, SummaryMode mode)
    : net_(&network), partition_(std::move(partition)), mode_(mode) {
  partition_.validate(network.topology());
  const std::size_t k = partition_.num_regions();
  const graph::Graph& g = network.topology();

  link_owner_.resize(g.num_edges());
  border_link_.resize(g.num_edges());
  region_links_.resize(k);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& edge = g.edge(e);
    const RegionId ru = partition_.region(edge.u);
    const RegionId rv = partition_.region(edge.v);
    border_link_[e] = ru != rv;
    link_owner_[e] = std::min(ru, rv);
    region_links_[link_owner_[e]].push_back(e);
  }

  instance_owner_.resize(network.num_instances());
  region_instances_.resize(k);
  for (InstanceId id = 0; id < network.num_instances(); ++id) {
    const RegionId r = partition_.region(network.instance(id).node);
    instance_owner_[id] = r;
    region_instances_[r].push_back(id);
  }

  // Border node lists (ascending, deduped) for the kBorderDistance
  // summaries; structural, so built once here.
  region_border_nodes_.resize(k);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!border_link_[e]) continue;
    const graph::Edge& edge = g.edge(e);
    region_border_nodes_[partition_.region(edge.u)].push_back(edge.u);
    region_border_nodes_[partition_.region(edge.v)].push_back(edge.v);
  }
  for (auto& nodes : region_border_nodes_) {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  }

  // Region-graph topology: scan border links once, one arc per adjacent
  // region pair. Edge ids in region_graph_ follow first-sighting order of
  // the pair, which is deterministic (global EdgeId order).
  region_graph_ = graph::Graph(k);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!border_link_[e]) continue;
    const graph::Edge& edge = g.edge(e);
    const auto a = static_cast<graph::NodeId>(partition_.region(edge.u));
    const auto b = static_cast<graph::NodeId>(partition_.region(edge.v));
    graph::EdgeId arc;
    if (const auto existing = region_graph_.find_edge(a, b)) {
      arc = *existing;
    } else {
      arc = region_graph_.add_edge(a, b, 0.0);
      arc_border_links_.emplace_back();
    }
    arc_border_links_[arc].push_back(e);
  }

  refresh_summaries();
}

std::span<const EdgeId> ShardedSubstrate::border_links(RegionId a,
                                                       RegionId b) const {
  DAGSFC_CHECK(a < partition_.num_regions() && b < partition_.num_regions());
  const auto arc = region_graph_.find_edge(static_cast<graph::NodeId>(a),
                                           static_cast<graph::NodeId>(b));
  if (!arc) return {};
  return arc_border_links_[*arc];
}

void ShardedSubstrate::refresh_summaries() {
  const std::size_t k = partition_.num_regions();

  // Transit prices: mean intra-region link price per region.
  transit_price_.assign(k, 0.0);
  std::vector<std::size_t> intra_count(k, 0);
  for (RegionId r = 0; r < k; ++r) {
    for (const EdgeId e : region_links_[r]) {
      if (border_link_[e]) continue;
      transit_price_[r] += net_->link_price(e);
      ++intra_count[r];
    }
  }
  for (RegionId r = 0; r < k; ++r) {
    if (intra_count[r] > 0) {
      transit_price_[r] /= static_cast<double>(intra_count[r]);
    }
  }

  // kBorderDistance: replace the per-link average with the mean
  // border-to-border shortest-path distance inside the region — one batched
  // multi-source pass per region over its intra links. Regions where the
  // measure is undefined (fewer than two border nodes, or border pairs the
  // intra links don't connect) keep the mean-price value computed above.
  if (mode_ == SummaryMode::kBorderDistance) {
    const graph::Graph& g = net_->topology();
    for (RegionId r = 0; r < k; ++r) {
      const std::vector<NodeId>& borders = region_border_nodes_[r];
      if (borders.size() < 2) continue;
      summary_mask_.assign(g.num_edges(), false);
      for (const EdgeId e : region_links_[r]) {
        if (!border_link_[e]) summary_mask_.set(e);
      }
      const graph::EdgeMask mask = summary_mask_.view();
      graph::multi_source_dijkstra_into(g, borders, summary_ws_, &mask);
      const graph::MultiSourceView bank(summary_ws_, g, borders.size());
      double sum = 0.0;
      std::size_t pairs = 0;
      bool connected = true;
      for (std::size_t i = 0; i < borders.size() && connected; ++i) {
        for (std::size_t j = i + 1; j < borders.size(); ++j) {
          const double d = bank.dist(i, borders[j]);
          if (d == graph::kInfCost) {
            connected = false;
            break;
          }
          sum += d;
          ++pairs;
        }
      }
      if (connected && pairs > 0) {
        transit_price_[r] = sum / static_cast<double>(pairs);
      }
    }
  }

  // Arc weights: cheapest border crossing plus half the transit of each
  // side. set_weight writes the CSR mirror through, so refreshing never
  // invalidates the contracted graph's packed view.
  for (graph::EdgeId arc = 0; arc < region_graph_.num_edges(); ++arc) {
    const graph::Edge& a = region_graph_.edge(arc);
    double min_border = std::numeric_limits<double>::infinity();
    for (const EdgeId e : arc_border_links_[arc]) {
      min_border = std::min(min_border, net_->link_price(e));
    }
    region_graph_.set_weight(
        arc, min_border + 0.5 * (transit_price_[a.u] + transit_price_[a.v]));
  }
  ++summary_epoch_;
}

std::vector<std::vector<RegionId>> ShardedSubstrate::region_paths(
    NodeId src, NodeId dst, std::size_t k) const {
  DAGSFC_CHECK(k >= 1);
  const RegionId from = partition_.region(src);
  const RegionId to = partition_.region(dst);
  if (from == to) return {{from}};
  const auto paths = graph::k_shortest_paths(
      region_graph_, static_cast<graph::NodeId>(from),
      static_cast<graph::NodeId>(to), k);
  std::vector<std::vector<RegionId>> out;
  out.reserve(paths.size());
  for (const auto& p : paths) {
    std::vector<RegionId> regions;
    regions.reserve(p.nodes.size());
    for (const graph::NodeId v : p.nodes) {
      regions.push_back(static_cast<RegionId>(v));
    }
    out.push_back(std::move(regions));
  }
  return out;
}

}  // namespace dagsfc::shard
