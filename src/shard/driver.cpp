#include "shard/driver.hpp"

#include <cmath>
#include <deque>
#include <queue>
#include <thread>
#include <utility>

namespace dagsfc::shard {

namespace {

double exponential(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.uniform_real(0.0, 1.0));
}

/// Virtual departure, ordered by (time, id) like the flat driver's.
struct Departure {
  double at = 0.0;
  serve::RequestId id = 0;

  bool operator>(const Departure& other) const {
    return at != other.at ? at > other.at : id > other.id;
  }
};

}  // namespace

void ShardWorkloadConfig::validate() const {
  regional.validate();
  DAGSFC_CHECK(arrival_rate > 0.0);
  DAGSFC_CHECK(mean_holding_time > 0.0);
  DAGSFC_CHECK(num_arrivals >= 1);
}

ShardWorkload make_shard_workload(const ShardWorkloadConfig& cfg,
                                  std::uint64_t seed) {
  cfg.validate();
  Rng rng(seed);
  ShardWorkload w{sim::make_regional_scenario(rng, cfg.regional), {}};
  const std::size_t n = w.scenario.network.num_nodes();
  w.arrivals.reserve(cfg.num_arrivals);
  double now = 0.0;
  for (std::size_t i = 0; i < cfg.num_arrivals; ++i) {
    now += exponential(rng, 1.0 / cfg.arrival_rate);
    serve::TimedRequest t;
    t.at = now;
    sfc::DagSfc dag =
        sim::make_sfc(rng, w.scenario.network.catalog(), cfg.regional.base);
    auto src = static_cast<graph::NodeId>(rng.index(n));
    auto dst = static_cast<graph::NodeId>(rng.index(n));
    if (dst == src) dst = static_cast<graph::NodeId>((dst + 1) % n);
    t.holding = exponential(rng, cfg.mean_holding_time);
    t.request.id = static_cast<serve::RequestId>(i + 1);
    t.request.sfc = std::move(dag);
    t.request.flow = core::Flow{src, dst, cfg.regional.base.flow_rate,
                                cfg.regional.base.flow_size};
    w.arrivals.push_back(std::move(t));
  }
  return w;
}

ShardDriverResult run_sharded_closed_loop(
    const ShardWorkload& workload, const ShardedSubstrate& substrate,
    const ShardedEmbeddingService::Options& options,
    const ShardServiceTuning& tuning) {
  DAGSFC_CHECK_MSG(&substrate.network() == &workload.scenario.network,
                   "substrate must shard the workload's network");
  ShardedEmbeddingService service(substrate, options);
  if (tuning.on_start) tuning.on_start(service);

  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;
  ShardDriverResult result;

  for (const serve::TimedRequest& t : workload.arrivals) {
    while (!departures.empty() && departures.top().at <= t.at) {
      service.release(departures.top().id);
      departures.pop();
    }
    const serve::Response resp = service.submit(t.request).get();
    if (resp.accepted()) {
      departures.push(Departure{t.at + t.holding, t.request.id});
    }
    result.simulated_time = t.at;
  }
  while (!departures.empty()) {
    service.release(departures.top().id);
    departures.pop();
  }

  result.conserved = service.ledger().residuals_nominal();
  result.metrics = service.metrics();
  if (tuning.on_finish) tuning.on_finish(service);
  return result;
}

ShardOpenLoopResult run_sharded_open_loop(const ShardWorkload& workload,
                                          const ShardedSubstrate& substrate,
                                          const ShardOpenLoopConfig& cfg) {
  DAGSFC_CHECK(cfg.producers >= 1);
  DAGSFC_CHECK(cfg.window >= 1);
  DAGSFC_CHECK_MSG(&substrate.network() == &workload.scenario.network,
                   "substrate must shard the workload's network");
  ShardedEmbeddingService service(substrate, cfg.service);
  if (cfg.tuning.on_start) cfg.tuning.on_start(service);

  const std::size_t per_producer_load =
      std::max<std::size_t>(1, cfg.target_load / cfg.producers);

  const auto t0 = serve::Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(cfg.producers);
  for (std::size_t p = 0; p < cfg.producers; ++p) {
    producers.emplace_back([&, p] {
      std::deque<std::pair<serve::RequestId, std::future<serve::Response>>>
          pending;
      std::deque<serve::RequestId> in_service;
      auto settle_one = [&] {
        auto [id, fut] = std::move(pending.front());
        pending.pop_front();
        const serve::Response r = fut.get();
        if (r.accepted()) in_service.push_back(id);
        while (in_service.size() > per_producer_load) {
          service.release(in_service.front());
          in_service.pop_front();
        }
      };
      for (std::size_t i = p; i < workload.arrivals.size();
           i += cfg.producers) {
        serve::Request req = workload.arrivals[i].request;
        if (cfg.deadline.count() > 0) {
          req.deadline = serve::Clock::now() + cfg.deadline;
        }
        const serve::RequestId id = req.id;
        pending.emplace_back(id, service.submit(std::move(req)));
        if (pending.size() > cfg.window) settle_one();
      }
      while (!pending.empty()) settle_one();
      for (serve::RequestId id : in_service) service.release(id);
    });
  }
  for (std::thread& t : producers) t.join();
  service.drain();

  ShardOpenLoopResult result;
  result.wall_seconds =
      std::chrono::duration<double>(serve::Clock::now() - t0).count();
  result.metrics = service.metrics();
  result.conserved = service.ledger().residuals_nominal();
  if (cfg.tuning.on_finish) cfg.tuning.on_finish(service);
  return result;
}

}  // namespace dagsfc::shard
