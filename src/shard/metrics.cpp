#include "shard/metrics.hpp"

#include <sstream>

#include "util/json.hpp"

namespace dagsfc::shard {

ShardMetrics::ShardMetrics(std::size_t num_shards)
    : registry_(std::make_unique<util::MetricRegistry>()) {
  util::MetricRegistry& r = *registry_;
  submitted_ = r.counter("dagsfc_shard_submitted_total");
  accepted_ = r.counter("dagsfc_shard_accepted_total");
  rejected_infeasible_ = r.counter("dagsfc_shard_rejected_infeasible_total");
  rejected_queue_full_ = r.counter("dagsfc_shard_rejected_queue_full_total");
  shed_deadline_ = r.counter("dagsfc_shard_shed_deadline_total");
  lost_conflict_ = r.counter("dagsfc_shard_lost_conflict_total");
  fast_commits_ = r.counter("dagsfc_shard_fast_commits_total");
  stamp_commits_ = r.counter("dagsfc_shard_stamp_commits_total");
  validated_commits_ = r.counter("dagsfc_shard_validated_commits_total");
  retries_ = r.counter("dagsfc_shard_retries_total");
  releases_ = r.counter("dagsfc_shard_releases_total");
  cross_region_ = r.counter("dagsfc_shard_cross_region_requests_total");
  per_shard_.reserve(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const util::MetricLabels labels{{"shard", std::to_string(s)}};
    per_shard_.push_back(PerShard{
        r.counter("dagsfc_shard_commits_total", labels),
        r.counter("dagsfc_shard_conflicts_total", labels),
        r.gauge("dagsfc_shard_queue_depth", labels),
    });
  }
}

void ShardMetrics::on_submitted() { submitted_.inc(); }

void ShardMetrics::on_release() { releases_.inc(); }

void ShardMetrics::on_cross_region() { cross_region_.inc(); }

void ShardMetrics::on_retry() { retries_.inc(); }

void ShardMetrics::on_response(const serve::Response& r) {
  switch (r.outcome) {
    case serve::Outcome::Accepted: accepted_.inc(); break;
    case serve::Outcome::RejectedInfeasible: rejected_infeasible_.inc(); break;
    case serve::Outcome::RejectedQueueFull: rejected_queue_full_.inc(); break;
    case serve::Outcome::SheddedDeadline: shed_deadline_.inc(); break;
    case serve::Outcome::LostConflict: lost_conflict_.inc(); break;
  }
}

void ShardMetrics::on_commit(const CommitResult& result) {
  if (result.ok) {
    switch (result.path) {
      case CommitPath::kFast: fast_commits_.inc(); break;
      case CommitPath::kStamp: stamp_commits_.inc(); break;
      case CommitPath::kValidated: validated_commits_.inc(); break;
      case CommitPath::kConflict: break;  // unreachable when ok
    }
    for (const RegionId r : result.touched) {
      DAGSFC_CHECK(r < per_shard_.size());
      per_shard_[r].commits.inc();
    }
  } else {
    DAGSFC_CHECK(result.conflict_region < per_shard_.size());
    per_shard_[result.conflict_region].conflicts.inc();
  }
}

void ShardMetrics::set_queue_depth(RegionId shard, std::size_t depth) {
  DAGSFC_CHECK(shard < per_shard_.size());
  per_shard_[shard].queue_depth.set(static_cast<double>(depth));
}

ShardMetricsSnapshot ShardMetrics::snapshot() const {
  ShardMetricsSnapshot s;
  s.submitted = submitted_.value();
  s.accepted = accepted_.value();
  s.rejected_infeasible = rejected_infeasible_.value();
  s.rejected_queue_full = rejected_queue_full_.value();
  s.shed_deadline = shed_deadline_.value();
  s.lost_conflict = lost_conflict_.value();
  s.fast_commits = fast_commits_.value();
  s.stamp_commits = stamp_commits_.value();
  s.validated_commits = validated_commits_.value();
  s.retries = retries_.value();
  s.releases = releases_.value();
  s.cross_region_requests = cross_region_.value();
  s.shards.reserve(per_shard_.size());
  for (const PerShard& p : per_shard_) {
    s.shards.push_back(ShardStatsSnapshot{p.commits.value(),
                                          p.conflicts.value(),
                                          p.queue_depth.value()});
  }
  return s;
}

std::string ShardMetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted << ",\"accepted\":" << accepted
     << ",\"rejected_infeasible\":" << rejected_infeasible
     << ",\"rejected_queue_full\":" << rejected_queue_full
     << ",\"shed_deadline\":" << shed_deadline
     << ",\"lost_conflict\":" << lost_conflict
     << ",\"acceptance_ratio\":" << util::json_number(acceptance_ratio())
     << ",\"fast_commits\":" << fast_commits
     << ",\"stamp_commits\":" << stamp_commits
     << ",\"validated_commits\":" << validated_commits
     << ",\"retries\":" << retries << ",\"releases\":" << releases
     << ",\"cross_region_requests\":" << cross_region_requests
     << ",\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"shard\":" << i << ",\"commits\":" << shards[i].commits
       << ",\"conflicts\":" << shards[i].conflicts
       << ",\"queue_depth\":" << util::json_number(shards[i].queue_depth)
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace dagsfc::shard
