#pragma once
/// \file io.hpp
/// Plain-text serialization of DAG-SFCs. One `layer` line per layer with
/// the regular-category ids of its (parallel) VNF set; a width > 1 implies
/// the merger, exactly as in the in-memory model:
///
///   # dagsfc sfc v1
///   layer 1
///   layer 2 3 4
///
/// An optional `flow <src> <dst> <rate> <size>` line rides along so a full
/// problem instance fits in two files (network + SFC/flow).

#include <optional>
#include <string>

#include "sfc/dag_sfc.hpp"

namespace dagsfc::sfc {

struct SfcFile {
  DagSfc dag;
  /// Present when the text carried a flow line: {src, dst, rate, size}.
  struct Flow {
    std::uint32_t source = 0;
    std::uint32_t destination = 0;
    double rate = 1.0;
    double size = 1.0;
  };
  std::optional<Flow> flow;
};

[[nodiscard]] std::string to_text(const DagSfc& dag);
[[nodiscard]] std::string to_text(const DagSfc& dag, const SfcFile::Flow& f);

/// Parses to_text()'s format; throws std::invalid_argument with a line
/// number on malformed input. Structural validation against a catalog is
/// the caller's job (DagSfc::validate).
[[nodiscard]] SfcFile sfc_from_text(const std::string& text);

}  // namespace dagsfc::sfc
