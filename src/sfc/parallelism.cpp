#include "sfc/parallelism.hpp"

namespace dagsfc::sfc {

bool profiles_parallelizable(const NfProfile& a, const NfProfile& b) noexcept {
  // Write/write and write/read conflicts on any packet region serialize the
  // pair; so do two droppers (their verdicts cannot be merged orderlessly —
  // NFP resolves one dropper via the merger's AND, but not two).
  if ((a.writes & b.writes) != 0) return false;
  if ((a.writes & b.reads) != 0) return false;
  if ((b.writes & a.reads) != 0) return false;
  if (a.may_drop && b.may_drop) return false;
  return true;
}

ProfileOracle::ProfileOracle(const net::VnfCatalog& catalog,
                             std::vector<NfProfile> profiles)
    : num_regular_(catalog.num_regular()), profiles_(std::move(profiles)) {
  DAGSFC_CHECK_MSG(profiles_.size() == num_regular_,
                   "one profile per regular catalog category required");
}

bool ProfileOracle::parallel(VnfTypeId a, VnfTypeId b) const {
  return profiles_parallelizable(profile(a), profile(b));
}

const NfProfile& ProfileOracle::profile(VnfTypeId t) const {
  DAGSFC_CHECK_MSG(t >= 1 && t <= num_regular_,
                   "profiles exist only for regular categories");
  return profiles_[t - 1];
}

MatrixOracle::MatrixOracle(std::size_t num_regular)
    : n_(num_regular), cell_(num_regular * num_regular, 0) {
  DAGSFC_CHECK(num_regular >= 1);
}

std::size_t MatrixOracle::idx(VnfTypeId a, VnfTypeId b) const {
  DAGSFC_CHECK_MSG(a >= 1 && a <= n_ && b >= 1 && b <= n_,
                   "matrix covers regular categories only");
  return static_cast<std::size_t>(a - 1) * n_ + (b - 1);
}

void MatrixOracle::set_parallel(VnfTypeId a, VnfTypeId b, bool value) {
  DAGSFC_CHECK_MSG(a != b, "a VNF does not pair with itself");
  cell_[idx(a, b)] = value ? 1 : 0;
  cell_[idx(b, a)] = value ? 1 : 0;
}

bool MatrixOracle::parallel(VnfTypeId a, VnfTypeId b) const {
  if (a == b) return false;
  return cell_[idx(a, b)] != 0;
}

RandomOracle::RandomOracle(std::size_t num_regular, Rng& rng, double p)
    : m_(num_regular) {
  for (VnfTypeId a = 1; a <= num_regular; ++a) {
    for (VnfTypeId b = a + 1; b <= num_regular; ++b) {
      if (rng.bernoulli(p)) m_.set_parallel(a, b);
    }
  }
}

bool RandomOracle::parallel(VnfTypeId a, VnfTypeId b) const {
  return m_.parallel(a, b);
}

}  // namespace dagsfc::sfc
