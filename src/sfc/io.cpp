#include "sfc/io.hpp"

#include <sstream>
#include <stdexcept>

namespace dagsfc::sfc {

namespace {
[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("sfc text, line " + std::to_string(line) +
                              ": " + what);
}
}  // namespace

std::string to_text(const DagSfc& dag) {
  std::ostringstream os;
  os << "# dagsfc sfc v1\n";
  for (const Layer& l : dag.layers()) {
    os << "layer";
    for (VnfTypeId t : l.vnfs) os << ' ' << t;
    os << '\n';
  }
  return os.str();
}

std::string to_text(const DagSfc& dag, const SfcFile::Flow& f) {
  std::ostringstream os;
  os.precision(17);
  os << to_text(dag);
  os << "flow " << f.source << ' ' << f.destination << ' ' << f.rate << ' '
     << f.size << '\n';
  return os.str();
}

SfcFile sfc_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  SfcFile out;
  std::vector<Layer> layers;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword) || keyword[0] == '#') continue;
    if (keyword == "layer") {
      Layer layer;
      VnfTypeId t = 0;
      while (ls >> t) layer.vnfs.push_back(t);
      if (!ls.eof()) fail(lineno, "layer entries must be integers");
      if (layer.vnfs.empty()) fail(lineno, "empty layer");
      layers.push_back(std::move(layer));
    } else if (keyword == "flow") {
      SfcFile::Flow f;
      if (!(ls >> f.source >> f.destination >> f.rate >> f.size)) {
        fail(lineno, "flow needs <src> <dst> <rate> <size>");
      }
      out.flow = f;
    } else {
      fail(lineno, "unknown keyword '" + keyword + "'");
    }
  }
  if (layers.empty()) fail(lineno, "no layers declared");
  out.dag = DagSfc(std::move(layers));
  return out;
}

}  // namespace dagsfc::sfc
