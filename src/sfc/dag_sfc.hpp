#pragma once
/// \file dag_sfc.hpp
/// The standardized DAG-SFC abstraction (paper §3.1–§3.2).
///
/// A DagSfc is an ordered list of layers S = {L_1..L_ω}. A layer holds
/// either one VNF (sequential step) or a *parallel VNF set* of φ_l ≥ 2 VNFs,
/// which is implicitly followed by a merger f(n+1) that re-integrates the φ_l
/// divergent packet versions. The merger is not stored in the layer's VNF
/// list — it is implied by φ_l > 1 — but it is a real, rentable VNF that the
/// embedding must place (see core/).
///
/// Meta-paths (the DAG's logical edges) come in two groups:
///   * inter-layer (set P1): previous layer's end point → each VNF of the
///     layer; these form a multicast, so a link shared by several of them in
///     the same layer is charged once;
///   * inner-layer (set P2): each parallel VNF → the layer's merger; charged
///     per path because each carries a distinct packet version.

#include <string>
#include <vector>

#include "net/vnf.hpp"

namespace dagsfc::sfc {

using net::VnfCatalog;
using net::VnfTypeId;

/// A sequential SFC: the classical ordered chain, input to the transform.
struct SequentialSfc {
  std::vector<VnfTypeId> chain;

  [[nodiscard]] std::size_t size() const noexcept { return chain.size(); }
};

struct Layer {
  std::vector<VnfTypeId> vnfs;  ///< the parallel VNF set (size φ_l ≥ 1)

  [[nodiscard]] std::size_t width() const noexcept { return vnfs.size(); }
  /// Parallel layers (φ_l > 1) are followed by a merger.
  [[nodiscard]] bool has_merger() const noexcept { return vnfs.size() > 1; }
};

class DagSfc {
 public:
  DagSfc() = default;
  explicit DagSfc(std::vector<Layer> layers);

  [[nodiscard]] std::size_t num_layers() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] const Layer& layer(std::size_t l) const {
    DAGSFC_CHECK(l < layers_.size());
    return layers_[l];
  }
  [[nodiscard]] const std::vector<Layer>& layers() const noexcept {
    return layers_;
  }

  /// Number of VNFs excluding mergers — the paper's "SFC size".
  [[nodiscard]] std::size_t size() const noexcept;
  /// Number of mergers the embedding must additionally place.
  [[nodiscard]] std::size_t num_mergers() const noexcept;
  /// Widest layer (φ in the complexity analysis of §4.5).
  [[nodiscard]] std::size_t max_width() const noexcept;

  /// All distinct VNF type ids appearing in the layers (mergers excluded).
  [[nodiscard]] std::vector<VnfTypeId> distinct_types() const;

  /// Checks the structure against a catalog: layers non-empty, every type a
  /// regular category, no type repeated inside one layer (a parallel set is
  /// a set). Throws ContractViolation on failure.
  void validate(const VnfCatalog& catalog) const;

  /// Human-readable one-liner, e.g. "[f1] -> [f2|f3|f4 +m] -> [f5]".
  [[nodiscard]] std::string to_string(const VnfCatalog& catalog) const;

  /// Graphviz rendering of the DAG including mergers and meta-path groups.
  [[nodiscard]] std::string to_dot(const VnfCatalog& catalog,
                                   const std::string& name) const;

 private:
  std::vector<Layer> layers_;
};

}  // namespace dagsfc::sfc
