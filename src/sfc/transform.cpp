#include "sfc/transform.hpp"

#include <algorithm>

namespace dagsfc::sfc {

DagSfc transform_min_layers(const SequentialSfc& chain,
                            const ParallelismOracle& oracle,
                            const TransformOptions& opts) {
  const std::vector<VnfTypeId>& c = chain.chain;
  const std::size_t n = c.size();
  if (n == 0) return DagSfc{};

  // feasible[j][i]: chain[j..i) forms one valid parallel set — pairwise
  // parallelizable, duplicate-free, within the width cap.
  // dp[i]: fewest layers covering the prefix of length i.
  constexpr std::size_t kInf = static_cast<std::size_t>(-1);
  std::vector<std::size_t> dp(n + 1, kInf);
  std::vector<std::size_t> cut(n + 1, 0);  // dp backpointer: segment start
  dp[0] = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    // Grow the segment backwards from position i−1 while it stays valid.
    for (std::size_t j = i; j-- > 0;) {
      if (opts.max_layer_width != 0 && i - j > opts.max_layer_width) break;
      bool valid = true;
      for (std::size_t k = j + 1; k < i && valid; ++k) {
        if (c[k] == c[j] || !oracle.parallel(c[j], c[k])) valid = false;
      }
      // c[j] joins the segment [j+1, i); earlier members were already
      // checked pairwise in previous iterations of j… they were checked
      // against each other, but we must confirm c[j] vs every member —
      // done above. Invalid j means any smaller j is invalid too only for
      // width; parallelism can't recover once broken, so we may stop.
      if (!valid) break;
      if (dp[j] != kInf && dp[j] + 1 < dp[i]) {
        dp[i] = dp[j] + 1;
        cut[i] = j;
      }
    }
  }
  DAGSFC_ASSERT(dp[n] != kInf);  // singleton segments always feasible

  std::vector<Layer> layers;
  std::size_t i = n;
  while (i > 0) {
    const std::size_t j = cut[i];
    Layer layer;
    layer.vnfs.assign(c.begin() + j, c.begin() + i);
    layers.push_back(std::move(layer));
    i = j;
  }
  std::reverse(layers.begin(), layers.end());
  return DagSfc(std::move(layers));
}

DagSfc transform(const SequentialSfc& chain, const ParallelismOracle& oracle,
                 const TransformOptions& opts) {
  std::vector<Layer> layers;
  for (VnfTypeId t : chain.chain) {
    bool absorbed = false;
    if (!layers.empty()) {
      Layer& current = layers.back();
      const bool width_ok = opts.max_layer_width == 0 ||
                            current.width() < opts.max_layer_width;
      const bool fresh_type =
          std::find(current.vnfs.begin(), current.vnfs.end(), t) ==
          current.vnfs.end();
      if (width_ok && fresh_type) {
        absorbed = std::all_of(
            current.vnfs.begin(), current.vnfs.end(),
            [&](VnfTypeId u) { return oracle.parallel(u, t); });
        if (absorbed) current.vnfs.push_back(t);
      }
    }
    if (!absorbed) layers.push_back(Layer{{t}});
  }
  return DagSfc(std::move(layers));
}

}  // namespace dagsfc::sfc
