#include "sfc/generator.hpp"

#include <algorithm>

namespace dagsfc::sfc {

std::vector<std::size_t> layer_widths(std::size_t size,
                                      std::size_t max_width) {
  DAGSFC_CHECK(size >= 1);
  DAGSFC_CHECK(max_width >= 1);
  std::vector<std::size_t> widths;
  std::size_t remaining = size;
  while (remaining > 0) {
    const std::size_t w = std::min(remaining, max_width);
    widths.push_back(w);
    remaining -= w;
  }
  return widths;
}

DagSfc random_dag_sfc(Rng& rng, const net::VnfCatalog& catalog,
                      const RandomSfcOptions& opts) {
  DAGSFC_CHECK_MSG(opts.size >= 1, "SFC size must be positive");
  DAGSFC_CHECK_MSG(catalog.num_regular() >= opts.size,
                   "catalog too small for distinct VNF sampling");
  std::vector<VnfTypeId> pool = catalog.regular_ids();
  rng.shuffle(pool);
  pool.resize(opts.size);

  std::vector<Layer> layers;
  std::size_t next = 0;
  for (std::size_t w : layer_widths(opts.size, opts.max_layer_width)) {
    Layer layer;
    layer.vnfs.assign(pool.begin() + next, pool.begin() + next + w);
    next += w;
    layers.push_back(std::move(layer));
  }
  DagSfc out(std::move(layers));
  out.validate(catalog);
  return out;
}

}  // namespace dagsfc::sfc
