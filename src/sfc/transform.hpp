#pragma once
/// \file transform.hpp
/// The standardized sequential → DAG-SFC transformation (paper §3.1, Fig. 2).
///
/// The chain is scanned left to right; the current layer's parallel set
/// absorbs the next VNF iff it is pairwise parallelizable with *every* VNF
/// already in the set (order inside a layer is then immaterial). Otherwise
/// the layer is closed — the non-parallelizable pair forces the sequential
/// boundary the paper describes — and a new layer starts. A width cap
/// reproduces deployments that bound fan-out (the paper's SFC generator uses
/// cap 3: "every three VNFs can be assigned in the same layer").

#include <cstddef>

#include "sfc/dag_sfc.hpp"
#include "sfc/parallelism.hpp"

namespace dagsfc::sfc {

struct TransformOptions {
  /// Maximum parallel-set width; 0 means unlimited.
  std::size_t max_layer_width = 0;
};

/// Transforms a sequential SFC into its standardized DAG-SFC. A repeated
/// VNF type never joins a layer already containing it (a parallel set is a
/// set); it opens a new layer instead.
[[nodiscard]] DagSfc transform(const SequentialSfc& chain,
                               const ParallelismOracle& oracle,
                               const TransformOptions& opts = {});

/// Minimum-layer transformation: dynamic program over contiguous chain
/// segments (layers must respect the chain's order between layers, so each
/// layer is a contiguous, mutually parallelizable, duplicate-free segment).
/// The greedy transform() can be forced into more layers than necessary —
/// e.g. widths {1,2} where {2,1} was possible and a later boundary exists —
/// while this one is provably minimal for the same constraint set. Fewer
/// layers ⇒ fewer mergers to rent and fewer serial stages of delay.
[[nodiscard]] DagSfc transform_min_layers(const SequentialSfc& chain,
                                          const ParallelismOracle& oracle,
                                          const TransformOptions& opts = {});

}  // namespace dagsfc::sfc
