#include "sfc/dag_sfc.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace dagsfc::sfc {

DagSfc::DagSfc(std::vector<Layer> layers) : layers_(std::move(layers)) {}

std::size_t DagSfc::size() const noexcept {
  std::size_t total = 0;
  for (const Layer& l : layers_) total += l.width();
  return total;
}

std::size_t DagSfc::num_mergers() const noexcept {
  std::size_t total = 0;
  for (const Layer& l : layers_) total += l.has_merger() ? 1 : 0;
  return total;
}

std::size_t DagSfc::max_width() const noexcept {
  std::size_t w = 0;
  for (const Layer& l : layers_) w = std::max(w, l.width());
  return w;
}

std::vector<VnfTypeId> DagSfc::distinct_types() const {
  std::set<VnfTypeId> types;
  for (const Layer& l : layers_) types.insert(l.vnfs.begin(), l.vnfs.end());
  return {types.begin(), types.end()};
}

void DagSfc::validate(const VnfCatalog& catalog) const {
  DAGSFC_CHECK_MSG(!layers_.empty(), "DAG-SFC has no layers");
  for (const Layer& l : layers_) {
    DAGSFC_CHECK_MSG(!l.vnfs.empty(), "empty layer");
    std::set<VnfTypeId> seen;
    for (VnfTypeId t : l.vnfs) {
      DAGSFC_CHECK_MSG(catalog.is_regular(t),
                       "layers may only contain regular VNF categories");
      DAGSFC_CHECK_MSG(seen.insert(t).second,
                       "duplicate VNF type inside one parallel set");
    }
  }
}

std::string DagSfc::to_string(const VnfCatalog& catalog) const {
  std::ostringstream os;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (l) os << " -> ";
    os << '[';
    for (std::size_t i = 0; i < layers_[l].vnfs.size(); ++i) {
      if (i) os << '|';
      os << catalog.name(layers_[l].vnfs[i]);
    }
    if (layers_[l].has_merger()) os << " +m";
    os << ']';
  }
  return os.str();
}

std::string DagSfc::to_dot(const VnfCatalog& catalog,
                           const std::string& name) const {
  std::ostringstream os;
  os << "digraph \"" << name << "\" {\n  rankdir=LR;\n";
  os << "  src [shape=circle,label=\"s\"];\n";
  os << "  dst [shape=circle,label=\"t\"];\n";
  // One DOT node per (layer, slot); mergers get their own.
  auto vnf_id = [](std::size_t l, std::size_t i) {
    return "v" + std::to_string(l) + "_" + std::to_string(i);
  };
  auto merger_id = [](std::size_t l) { return "m" + std::to_string(l); };
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    for (std::size_t i = 0; i < layers_[l].vnfs.size(); ++i) {
      os << "  " << vnf_id(l, i) << " [shape=box,label=\""
         << catalog.name(layers_[l].vnfs[i]) << "\"];\n";
    }
    if (layers_[l].has_merger()) {
      os << "  " << merger_id(l) << " [shape=diamond,label=\"merger\"];\n";
    }
  }
  // Meta-paths. Inter-layer edges are solid; inner-layer dashed.
  std::string prev = "src";
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    for (std::size_t i = 0; i < layers_[l].vnfs.size(); ++i) {
      os << "  " << prev << " -> " << vnf_id(l, i) << ";\n";
    }
    if (layers_[l].has_merger()) {
      for (std::size_t i = 0; i < layers_[l].vnfs.size(); ++i) {
        os << "  " << vnf_id(l, i) << " -> " << merger_id(l)
           << " [style=dashed];\n";
      }
      prev = merger_id(l);
    } else {
      prev = vnf_id(l, 0);
    }
  }
  os << "  " << prev << " -> dst;\n}\n";
  return os.str();
}

}  // namespace dagsfc::sfc
