#pragma once
/// \file generator.hpp
/// Random DAG-SFC generator following the paper's simulation rule (§5.1):
/// "every three VNFs can be assigned in the same layer", so a size-k SFC has
/// layer widths 3,3,…,remainder — the same *structure* each run — while the
/// VNF types on corresponding positions differ between runs (sampled without
/// replacement from the catalog's regular categories).

#include "sfc/dag_sfc.hpp"
#include "util/rng.hpp"

namespace dagsfc::sfc {

struct RandomSfcOptions {
  std::size_t size = 5;            ///< total VNFs, paper Table 2 default
  std::size_t max_layer_width = 3; ///< paper's "every three VNFs" rule
};

/// Generates a DAG-SFC of the requested size. Requires the catalog to have
/// at least \p size regular categories (types are distinct across the SFC so
/// that "each SFC is generated using different VNF sets" is meaningful).
[[nodiscard]] DagSfc random_dag_sfc(Rng& rng, const net::VnfCatalog& catalog,
                                    const RandomSfcOptions& opts = {});

/// The deterministic layer-width pattern the generator uses for \p size
/// (e.g. size 5 → {3, 2}); exposed for tests and benches.
[[nodiscard]] std::vector<std::size_t> layer_widths(std::size_t size,
                                                    std::size_t max_width);

}  // namespace dagsfc::sfc
