#pragma once
/// \file parallelism.hpp
/// VNF parallelizability analysis (paper §3.1, building on NFP [17] and
/// ParaBox [22]).
///
/// Two network functions can process the same packet in parallel when their
/// packet operations do not conflict: neither may write a packet region the
/// other reads or writes, and at most one of the pair may drop or terminate
/// the flow. NFP's measurement found 53.8% of NF pairs in enterprise chains
/// parallelizable — the default probability of RandomOracle.
///
/// Three oracle implementations:
///   * ProfileOracle — derives pairwise compatibility from per-NF
///     read/write/drop action profiles (the principled analysis);
///   * MatrixOracle — explicit boolean matrix, for tests and custom tables;
///   * RandomOracle — Bernoulli(p) per unordered pair, fixed at
///     construction, for synthetic workloads.

#include <cstdint>
#include <vector>

#include "net/vnf.hpp"
#include "util/rng.hpp"

namespace dagsfc::sfc {

using net::VnfTypeId;

/// Packet regions an NF may read or modify, as a bitmask.
enum class PacketField : std::uint32_t {
  kNone = 0,
  kSrcAddr = 1u << 0,
  kDstAddr = 1u << 1,
  kTransportPorts = 1u << 2,
  kPayload = 1u << 3,
  kFlowState = 1u << 4,  ///< shared per-flow state (e.g. connection table)
};

[[nodiscard]] constexpr std::uint32_t to_mask(PacketField f) noexcept {
  return static_cast<std::uint32_t>(f);
}
[[nodiscard]] constexpr std::uint32_t operator|(PacketField a,
                                                PacketField b) noexcept {
  return to_mask(a) | to_mask(b);
}

/// Action profile of one NF category.
struct NfProfile {
  std::uint32_t reads = 0;   ///< PacketField mask
  std::uint32_t writes = 0;  ///< PacketField mask
  bool may_drop = false;     ///< may discard the packet (firewall, IPS)
};

/// Decides whether two profiles may run on the same packet concurrently.
[[nodiscard]] bool profiles_parallelizable(const NfProfile& a,
                                           const NfProfile& b) noexcept;

/// Abstract pairwise parallelizability relation. Must be symmetric;
/// reflexivity is irrelevant (a VNF never pairs with itself in a layer).
class ParallelismOracle {
 public:
  virtual ~ParallelismOracle() = default;
  [[nodiscard]] virtual bool parallel(VnfTypeId a, VnfTypeId b) const = 0;
};

class ProfileOracle final : public ParallelismOracle {
 public:
  /// profiles[i] describes catalog type id i+1 (regular categories only).
  ProfileOracle(const net::VnfCatalog& catalog,
                std::vector<NfProfile> profiles);

  [[nodiscard]] bool parallel(VnfTypeId a, VnfTypeId b) const override;
  [[nodiscard]] const NfProfile& profile(VnfTypeId t) const;

 private:
  std::size_t num_regular_;
  std::vector<NfProfile> profiles_;
};

class MatrixOracle final : public ParallelismOracle {
 public:
  /// Starts with nothing parallelizable among \p num_regular categories.
  explicit MatrixOracle(std::size_t num_regular);

  /// Marks the unordered pair {a, b} parallelizable (or not).
  void set_parallel(VnfTypeId a, VnfTypeId b, bool value = true);
  [[nodiscard]] bool parallel(VnfTypeId a, VnfTypeId b) const override;

 private:
  [[nodiscard]] std::size_t idx(VnfTypeId a, VnfTypeId b) const;
  std::size_t n_;
  std::vector<char> cell_;
};

class RandomOracle final : public ParallelismOracle {
 public:
  /// Each unordered pair is parallelizable with probability \p p, drawn once
  /// at construction (defaults to NFP's measured 53.8%).
  RandomOracle(std::size_t num_regular, Rng& rng, double p = 0.538);

  [[nodiscard]] bool parallel(VnfTypeId a, VnfTypeId b) const override;
  [[nodiscard]] const MatrixOracle& matrix() const noexcept { return m_; }

 private:
  MatrixOracle m_;
};

}  // namespace dagsfc::sfc
